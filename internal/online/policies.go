package online

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jcr/internal/core"
	"jcr/internal/placement"
)

// AlternatingPolicy re-runs the Section 4.3.3 alternating optimizer each
// hour (the paper's proposed operation).
type AlternatingPolicy struct {
	// Fractional selects IC-FR routing; default is IC-IR.
	Fractional bool
	// WarmStart seeds each hour with the previous hour's placement,
	// which both speeds convergence and reduces churn. On a degraded
	// network the carried placement is first evicted down to the
	// current cache capacities (failed caches lose their contents).
	WarmStart bool
	// BestEffort routes around failed links: demand with no reachable
	// replica is declared in Decision.Unserved instead of failing the
	// hour. Off by default, preserving strict behavior.
	BestEffort bool
	// Rng drives the routing's randomized rounding.
	Rng *rand.Rand
	// NoSolverReuse disables carrying solver state (warm-started LPs,
	// routing caches) hour to hour. The zero value reuses: consecutive
	// hours solve structurally repeating subproblems, so each Decide
	// warm-starts from the last successful hour's bases. Reuse never
	// changes solution quality — every cache re-validates and falls back
	// cold on mismatch, and warm solves may differ from cold ones only
	// between equal-cost optima — and a timed-out or failed hour simply
	// leaves no retained basis (the next hour starts cold), so it composes
	// with DecideTimeout and the degradation ladder.
	NoSolverReuse bool

	prev  *placement.Placement
	state *core.SolveState
}

// Name implements Policy.
func (p *AlternatingPolicy) Name() string {
	switch {
	case p.WarmStart:
		return "alternating (warm start)"
	case p.Fractional:
		return "alternating (IC-FR)"
	default:
		return "alternating"
	}
}

// Decide implements Policy.
func (p *AlternatingPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	opts := core.AlternatingOptions{Fractional: p.Fractional, Rng: p.Rng}
	opts.Routing.BestEffort = p.BestEffort
	if !p.NoSolverReuse {
		if p.state == nil {
			p.state = core.NewSolveState()
		}
		opts.State = p.state
	}
	if p.WarmStart && p.prev != nil {
		init := p.prev
		if spec.CheckFeasible(init) != nil {
			// Caches shrank or failed since last hour: the lost
			// content cannot seed this hour's optimization.
			init = init.Clone()
			spec.EvictToFit(init)
		}
		opts.Initial = init
	}
	sol, err := core.AlternatingContext(ctx, spec, opts)
	if err != nil {
		return nil, err
	}
	pths, uns := sol.Routing.Paths, sol.Routing.Unserved
	if p.BestEffort && len(uns) > 0 {
		pths = repairStranded(spec, sol.Placement, pths, uns, dist)
	}
	p.prev = sol.Placement
	return &Decision{Placement: sol.Placement, Paths: pths, Unserved: uns}, nil
}

// repairStranded is the degradation-aware post-pass of the best-effort
// alternating controller. The optimizer has no objective term for demand it
// declared unserved (no path reaches a replica), so on a partitioned
// network it leaves cut-off components without the content their caches
// could hold. For each stranded request, largest demand first, this stores
// the item at the nearest cache its requester can still reach, evicting the
// slots whose loss is cheapest -- where an eviction's loss counts only
// demand that becomes truly stranded (a dropped request with another
// reachable replica is re-served via nearest-replica fallback) -- and
// accepts a swap only when it strands strictly less demand than it
// recovers. Paths served from an evicted replica are dropped and their
// demand declared unserved; the repaired request's own Unserved entry
// stays, and the evaluator re-checks reachability and serves it from the
// new replica. Returns the surviving paths.
func repairStranded(spec *placement.Spec, pl *placement.Placement, paths []placement.ServingPath, unserved map[placement.Request]float64, dist [][]float64) []placement.ServingPath {
	// Paths indexed by their replica: the response originates at the
	// path's source (at the requester itself for a local hit), so
	// evicting that copy drops these paths.
	bySource := map[placement.Request][]int{}
	for k := range paths {
		src := paths[k].Req.Node
		if len(paths[k].Path.Arcs) > 0 {
			src = paths[k].Path.Source(spec.G)
		}
		key := placement.Request{Item: paths[k].Req.Item, Node: src}
		bySource[key] = append(bySource[key], k)
	}
	dropped := make([]bool, len(paths))
	// reachOther reports a live replica of item j reaching node s other
	// than the one at skip (pass skip < 0 for "any replica").
	reachOther := func(j, s, skip int) bool {
		for u := range pl.Stores {
			if u != skip && pl.Stores[u][j] && !math.IsInf(dist[u][s], 1) {
				return true
			}
		}
		return false
	}
	// lossOf is the demand truly stranded by evicting item j from v: the
	// requests served from that replica with no other reachable copy.
	// (Declared-unserved requests reach no replica at all, so they never
	// add to the loss.)
	lossOf := func(v, j int) float64 {
		var loss float64
		counted := map[int]bool{}
		for _, k := range bySource[placement.Request{Item: j, Node: v}] {
			if dropped[k] {
				continue
			}
			s := paths[k].Req.Node
			if counted[s] || reachOther(j, s, v) {
				continue
			}
			counted[s] = true
			loss += spec.Rates[j][s]
		}
		return loss
	}
	evictReplica := func(v, j int) {
		for _, k := range bySource[placement.Request{Item: j, Node: v}] {
			if dropped[k] {
				continue
			}
			dropped[k] = true
			unserved[paths[k].Req] += paths[k].Rate
		}
		pl.Stores[v][j] = false
	}
	reqs := make([]placement.Request, 0, len(unserved))
	for rq := range unserved {
		reqs = append(reqs, rq)
	}
	sort.Slice(reqs, func(a, b int) bool {
		//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
		if la, lb := unserved[reqs[a]], unserved[reqs[b]]; la != lb {
			return la > lb
		}
		if reqs[a].Item != reqs[b].Item {
			return reqs[a].Item < reqs[b].Item
		}
		return reqs[a].Node < reqs[b].Node
	})
	for _, rq := range reqs {
		lam := unserved[rq]
		if lam <= 0 || reachOther(rq.Item, rq.Node, -1) {
			continue // already repaired by an earlier request's replica
		}
		type cand struct {
			v int
			d float64
		}
		var cands []cand
		for v := range pl.Stores {
			if spec.IsPinned(v) || spec.CacheCap[v] <= 0 {
				continue
			}
			if d := dist[v][rq.Node]; !math.IsInf(d, 1) {
				cands = append(cands, cand{v, d})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].v < cands[b].v
		})
		for _, c := range cands {
			if repairStoreAt(spec, pl, lossOf, evictReplica, c.v, rq, lam) {
				break
			}
		}
	}
	var out []placement.ServingPath
	for k := range paths {
		if !dropped[k] {
			out = append(out, paths[k])
		}
	}
	return out
}

// repairStoreAt tries to store rq's item at cache v, freeing space by
// evicting the cheapest-loss slots first. It refuses a swap that does not
// strictly pay for itself in stranded demand.
func repairStoreAt(spec *placement.Spec, pl *placement.Placement, lossOf func(v, j int) float64, evictReplica func(v, j int), v int, rq placement.Request, lam float64) bool {
	need := spec.Occupancy(pl, v) + spec.Size(rq.Item) - spec.CacheCap[v]
	if need <= 0 {
		pl.Stores[v][rq.Item] = true
		return true
	}
	type slot struct {
		j    int
		loss float64
	}
	var slots []slot
	for j := 0; j < spec.NumItems; j++ {
		if pl.Stores[v][j] && j != rq.Item {
			slots = append(slots, slot{j, lossOf(v, j)})
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
		if slots[a].loss != slots[b].loss {
			return slots[a].loss < slots[b].loss
		}
		return slots[a].j < slots[b].j
	})
	var freed, loss float64
	var evict []int
	for _, sl := range slots {
		if freed >= need {
			break
		}
		evict = append(evict, sl.j)
		freed += spec.Size(sl.j)
		loss += sl.loss
	}
	if freed < need || loss >= lam {
		return false
	}
	for _, j := range evict {
		evictReplica(v, j)
	}
	pl.Stores[v][rq.Item] = true
	return true
}

// SPPolicy is the [38] baseline: per-path placement on the origin's
// shortest-path tree, served along those paths.
type SPPolicy struct {
	Origin int
}

// Name implements Policy.
func (SPPolicy) Name() string { return "SP [38]" }

// Decide implements Policy.
func (p SPPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	pl, paths, err := placement.SP38(spec, p.Origin, placement.PerPathAuto, nil)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: pl, Paths: paths}, nil
}

// KSPPolicy is the [3] baseline: joint placement over each request's k
// shortest candidate paths from the origin, served along the chosen
// candidates.
type KSPPolicy struct {
	Origin int
	// K is the number of candidate paths per request; zero means 3, the
	// paper's evaluation setting.
	K int
}

// Name implements Policy.
func (p KSPPolicy) Name() string { return fmt.Sprintf("%d-SP [3]", p.k()) }

func (p KSPPolicy) k() int {
	if p.K <= 0 {
		return 3
	}
	return p.K
}

// Decide implements Policy.
func (p KSPPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	res, err := placement.KSP3(spec, p.Origin, p.k(), nil)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: res.Placement, Paths: res.Chosen}, nil
}

// RNRPolicy places greedily and routes every request from its nearest
// replica, capacity-obliviously.
type RNRPolicy struct{}

// Name implements Policy.
func (RNRPolicy) Name() string { return "greedy + RNR" }

// Decide implements Policy.
func (RNRPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	res, err := placement.Greedy(spec, dist)
	if err != nil {
		return nil, err
	}
	paths, err := placement.GlobalRNRServing(spec, res.Placement, dist)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: res.Placement, Paths: paths}, nil
}

// StaticPolicy decides once (on the first hour it sees) and never changes:
// the natural churn-free baseline.
type StaticPolicy struct {
	Inner Policy

	decided *Decision
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static " + p.Inner.Name() }

// Decide implements Policy.
func (p *StaticPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	if p.decided == nil {
		d, err := p.Inner.Decide(ctx, spec, dist)
		if err != nil {
			return nil, err
		}
		p.decided = d
	}
	return p.decided, nil
}
