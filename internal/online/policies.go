package online

import (
	"math/rand"

	"jcr/internal/core"
	"jcr/internal/placement"
)

// AlternatingPolicy re-runs the Section 4.3.3 alternating optimizer each
// hour (the paper's proposed operation).
type AlternatingPolicy struct {
	// Fractional selects IC-FR routing; default is IC-IR.
	Fractional bool
	// WarmStart seeds each hour with the previous hour's placement,
	// which both speeds convergence and reduces churn.
	WarmStart bool
	// Rng drives the routing's randomized rounding.
	Rng *rand.Rand

	prev *placement.Placement
}

// Name implements Policy.
func (p *AlternatingPolicy) Name() string {
	switch {
	case p.WarmStart:
		return "alternating (warm start)"
	case p.Fractional:
		return "alternating (IC-FR)"
	default:
		return "alternating"
	}
}

// Decide implements Policy.
func (p *AlternatingPolicy) Decide(spec *placement.Spec, dist [][]float64) (*Decision, error) {
	opts := core.AlternatingOptions{Fractional: p.Fractional, Rng: p.Rng}
	if p.WarmStart && p.prev != nil {
		opts.Initial = p.prev
	}
	sol, err := core.Alternating(spec, opts)
	if err != nil {
		return nil, err
	}
	p.prev = sol.Placement
	return &Decision{Placement: sol.Placement, Paths: sol.Routing.Paths}, nil
}

// SPPolicy is the [38] baseline: per-path placement on the origin's
// shortest-path tree, served along those paths.
type SPPolicy struct {
	Origin int
}

// Name implements Policy.
func (SPPolicy) Name() string { return "SP [38]" }

// Decide implements Policy.
func (p SPPolicy) Decide(spec *placement.Spec, dist [][]float64) (*Decision, error) {
	pl, paths, err := placement.SP38(spec, p.Origin, placement.PerPathAuto, nil)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: pl, Paths: paths}, nil
}

// RNRPolicy places greedily and routes every request from its nearest
// replica, capacity-obliviously.
type RNRPolicy struct{}

// Name implements Policy.
func (RNRPolicy) Name() string { return "greedy + RNR" }

// Decide implements Policy.
func (RNRPolicy) Decide(spec *placement.Spec, dist [][]float64) (*Decision, error) {
	res, err := placement.Greedy(spec, dist)
	if err != nil {
		return nil, err
	}
	paths, err := placement.GlobalRNRServing(spec, res.Placement, dist)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: res.Placement, Paths: paths}, nil
}

// StaticPolicy decides once (on the first hour it sees) and never changes:
// the natural churn-free baseline.
type StaticPolicy struct {
	Inner Policy

	decided *Decision
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static " + p.Inner.Name() }

// Decide implements Policy.
func (p *StaticPolicy) Decide(spec *placement.Spec, dist [][]float64) (*Decision, error) {
	if p.decided == nil {
		d, err := p.Inner.Decide(spec, dist)
		if err != nil {
			return nil, err
		}
		p.decided = d
	}
	return p.decided, nil
}
