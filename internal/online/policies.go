package online

import (
	"context"
	"fmt"
	"math/rand"

	"jcr/internal/placement"
	"jcr/internal/strategy"
)

// AlternatingPolicy re-runs the Section 4.3.3 alternating optimizer each
// hour (the paper's proposed operation).
type AlternatingPolicy struct {
	// Fractional selects IC-FR routing; default is IC-IR.
	Fractional bool
	// WarmStart seeds each hour with the previous hour's placement,
	// which both speeds convergence and reduces churn. On a degraded
	// network the carried placement is first evicted down to the
	// current cache capacities (failed caches lose their contents).
	WarmStart bool
	// BestEffort routes around failed links: demand with no reachable
	// replica is declared in Decision.Unserved instead of failing the
	// hour. Off by default, preserving strict behavior.
	BestEffort bool
	// Rng drives the routing's randomized rounding.
	Rng *rand.Rand
	// NoSolverReuse disables carrying solver state (warm-started LPs,
	// routing caches) hour to hour. The zero value reuses: consecutive
	// hours solve structurally repeating subproblems, so each Decide
	// warm-starts from the last successful hour's bases. Reuse never
	// changes solution quality — every cache re-validates and falls back
	// cold on mismatch, and warm solves may differ from cold ones only
	// between equal-cost optima — and a timed-out or failed hour simply
	// leaves no retained basis (the next hour starts cold), so it composes
	// with DecideTimeout and the degradation ladder.
	NoSolverReuse bool

	inner *strategy.Alternating
}

// Name implements Policy.
func (p *AlternatingPolicy) Name() string {
	switch {
	case p.WarmStart:
		return "alternating (warm start)"
	case p.Fractional:
		return "alternating (IC-FR)"
	default:
		return "alternating"
	}
}

// Decide implements Policy.
func (p *AlternatingPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	if p.inner == nil {
		p.inner = &strategy.Alternating{
			Fractional:    p.Fractional,
			WarmStart:     p.WarmStart,
			BestEffort:    p.BestEffort,
			Rng:           p.Rng,
			NoSolverReuse: p.NoSolverReuse,
		}
	}
	plan, _, err := p.inner.Decide(ctx, strategy.Instance{Spec: spec, Dist: dist})
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: plan.Placement, Paths: plan.Paths, Unserved: plan.Unserved}, nil
}

// StrategyPolicy adapts any registered strategy (internal/strategy) to the
// online controller's Policy interface, so online.Run and the serving
// control plane can drive the paper's algorithms and the related-work
// baselines interchangeably. The adapter is stateful exactly when the
// strategy is (a Warm strategy keeps its carried solver state across
// hours).
type StrategyPolicy struct {
	Strategy strategy.Strategy
	// Label overrides the reported policy name; empty uses the
	// strategy's registry name.
	Label string
}

// Name implements Policy.
func (p *StrategyPolicy) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return p.Strategy.Name()
}

// Decide implements Policy.
func (p *StrategyPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	plan, _, err := p.Strategy.Decide(ctx, strategy.Instance{Spec: spec, Dist: dist})
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: plan.Placement, Paths: plan.Paths, Unserved: plan.Unserved}, nil
}

// SPPolicy is the [38] baseline: per-path placement on the origin's
// shortest-path tree, served along those paths.
type SPPolicy struct {
	Origin int
}

// Name implements Policy.
func (SPPolicy) Name() string { return "SP [38]" }

// Decide implements Policy.
func (p SPPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	pl, paths, err := placement.SP38(spec, p.Origin, placement.PerPathAuto, nil)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: pl, Paths: paths}, nil
}

// KSPPolicy is the [3] baseline: joint placement over each request's k
// shortest candidate paths from the origin, served along the chosen
// candidates.
type KSPPolicy struct {
	Origin int
	// K is the number of candidate paths per request; zero means 3, the
	// paper's evaluation setting.
	K int
}

// Name implements Policy.
func (p KSPPolicy) Name() string { return fmt.Sprintf("%d-SP [3]", p.k()) }

func (p KSPPolicy) k() int {
	if p.K <= 0 {
		return 3
	}
	return p.K
}

// Decide implements Policy.
func (p KSPPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	res, err := placement.KSP3(spec, p.Origin, p.k(), nil)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: res.Placement, Paths: res.Chosen}, nil
}

// RNRPolicy places greedily and routes every request from its nearest
// replica, capacity-obliviously.
type RNRPolicy struct{}

// Name implements Policy.
func (RNRPolicy) Name() string { return "greedy + RNR" }

// Decide implements Policy.
func (RNRPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	res, err := placement.Greedy(spec, dist)
	if err != nil {
		return nil, err
	}
	paths, err := placement.GlobalRNRServing(spec, res.Placement, dist)
	if err != nil {
		return nil, err
	}
	return &Decision{Placement: res.Placement, Paths: paths}, nil
}

// StaticPolicy decides once (on the first hour it sees) and never changes:
// the natural churn-free baseline.
type StaticPolicy struct {
	Inner Policy

	decided *Decision
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static " + p.Inner.Name() }

// Decide implements Policy.
func (p *StaticPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	if p.decided == nil {
		d, err := p.Inner.Decide(ctx, spec, dist)
		if err != nil {
			return nil, err
		}
		p.decided = d
	}
	return p.decided, nil
}
