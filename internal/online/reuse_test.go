package online

import (
	"context"
	"math/rand"
	"testing"
)

// samePlacement reports exact equality of two placements' stores.
func samePlacement(a, b [][]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}

// TestSolverReuseMatchesNoReuse runs the same workload through the
// alternating policy with hour-to-hour solver reuse (the default) and with
// reuse disabled: every hour's decision must coincide — the retained bases
// and caches may only change how fast the answer arrives.
func TestSolverReuseMatchesNoReuse(t *testing.T) {
	hours := buildHours(t)
	reused, err := Simulate(&AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(3))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Simulate(&AlternatingPolicy{WarmStart: true, NoSolverReuse: true, Rng: rand.New(rand.NewSource(3))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(reused.Hours) != len(cold.Hours) {
		t.Fatalf("hour counts: %d with reuse, %d without", len(reused.Hours), len(cold.Hours))
	}
	for h := range reused.Hours {
		a, b := reused.Hours[h], cold.Hours[h]
		//jcrlint:allow float-eq: bit-for-bit determinism contract between reuse on/off
		if a.Cost != b.Cost || a.Congestion != b.Congestion || a.Churn != b.Churn {
			t.Errorf("hour %d diverges: reuse (cost %v cong %v churn %d) vs cold (cost %v cong %v churn %d)",
				h, a.Cost, a.Congestion, a.Churn, b.Cost, b.Congestion, b.Churn)
		}
	}
}

// TestSolverReuseSurvivesFailedHour interleaves a canceled Decide between
// two good hours: the failed hour must error out without poisoning the
// retained solver state, so the following hour still matches a policy that
// never saw the failure.
func TestSolverReuseSurvivesFailedHour(t *testing.T) {
	hours := buildHours(t)
	pol := &AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(4))}
	ref := &AlternatingPolicy{WarmStart: true, NoSolverReuse: true, Rng: rand.New(rand.NewSource(4))}

	d0, err := pol.Decide(context.Background(), hours[0].Decision, hours[0].Dist)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := ref.Decide(context.Background(), hours[0].Decision, hours[0].Dist)
	if err != nil {
		t.Fatal(err)
	}
	if !samePlacement(d0.Placement.Stores, r0.Placement.Stores) {
		t.Fatal("hour 0 placements diverge before any failure")
	}

	// Hour 1 times out immediately (the DecideTimeout path hands the policy
	// a context that is already done mid-flight).
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pol.Decide(cctx, hours[1].Decision, hours[1].Dist); err == nil {
		t.Fatal("canceled Decide succeeded")
	}

	// Hour 2 must recover and agree with the reference policy, whose only
	// history is the two successful hours.
	d2, err := pol.Decide(context.Background(), hours[2].Decision, hours[2].Dist)
	if err != nil {
		t.Fatalf("hour after failure: %v", err)
	}
	r2, err := ref.Decide(context.Background(), hours[2].Decision, hours[2].Dist)
	if err != nil {
		t.Fatal(err)
	}
	if !samePlacement(d2.Placement.Stores, r2.Placement.Stores) {
		t.Error("post-failure placement diverges from the never-failed reference")
	}
	if err := validateDecision(hours[2].Decision, d2); err != nil {
		t.Errorf("post-failure decision invalid: %v", err)
	}
}
