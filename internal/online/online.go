// Package online simulates the paper's operational setting (Section 6):
// a network provider adjusts caching and routing decisions on an hourly
// basis from predicted demand, then serves whatever demand actually
// arrives. It walks a view trace hour by hour, re-optimizes with a
// pluggable policy, and records per-hour routing cost, congestion, and
// placement churn (items moved between consecutive hours - the operational
// cost of re-optimizing that a one-shot evaluation cannot see).
package online

import (
	"fmt"
	"math"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// rateEps is the request rate below which a decided total is treated as
// zero (the decision did not anticipate the request).
const rateEps = 1e-12

// Decision is one hour's chosen placement and serving paths.
type Decision struct {
	Placement *placement.Placement
	// Paths serve the decision demand; the simulator rescales them to
	// the realized demand (requests the decision did not anticipate fall
	// back to route-to-nearest-replica).
	Paths []placement.ServingPath
}

// Policy decides one hour's placement and routing from the decision spec.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Decide computes the hour's decision; dist is the all-pairs
	// least-cost matrix of spec.G.
	Decide(spec *placement.Spec, dist [][]float64) (*Decision, error)
}

// HourMetrics records one simulated hour.
type HourMetrics struct {
	Hour       int
	Cost       float64
	Congestion float64
	// Churn counts (node, item) cache entries that changed versus the
	// previous hour's placement.
	Churn int
}

// Series is a policy's full simulation record.
type Series struct {
	Policy string
	Hours  []HourMetrics
}

// TotalCost sums the per-hour costs.
func (s *Series) TotalCost() float64 {
	var t float64
	for _, h := range s.Hours {
		t += h.Cost
	}
	return t
}

// MeanCongestion averages the per-hour congestion.
func (s *Series) MeanCongestion() float64 {
	if len(s.Hours) == 0 {
		return 0
	}
	var t float64
	for _, h := range s.Hours {
		t += h.Congestion
	}
	return t / float64(len(s.Hours))
}

// TotalChurn sums placement changes across hours.
func (s *Series) TotalChurn() int {
	t := 0
	for _, h := range s.Hours {
		t += h.Churn
	}
	return t
}

// HourInput is one hour of workload: the demand the policy sees and the
// demand that actually arrives, over a shared network.
type HourInput struct {
	Hour     int
	Decision *placement.Spec
	Truth    *placement.Spec
	Dist     [][]float64
}

// Simulate runs the policy over the given hours.
func Simulate(policy Policy, hours []HourInput) (*Series, error) {
	out := &Series{Policy: policy.Name()}
	var prev *placement.Placement
	for _, h := range hours {
		dec, err := policy.Decide(h.Decision, h.Dist)
		if err != nil {
			return nil, fmt.Errorf("online: %s at hour %d: %w", policy.Name(), h.Hour, err)
		}
		cost, cong, err := evaluateOnTruth(h, dec)
		if err != nil {
			return nil, fmt.Errorf("online: %s at hour %d: %w", policy.Name(), h.Hour, err)
		}
		out.Hours = append(out.Hours, HourMetrics{
			Hour:       h.Hour,
			Cost:       cost,
			Congestion: cong,
			Churn:      churn(prev, dec.Placement),
		})
		prev = dec.Placement
	}
	return out, nil
}

// churn counts differing cache entries; the first hour has zero churn.
func churn(prev, cur *placement.Placement) int {
	if prev == nil {
		return 0
	}
	n := 0
	for v := range cur.Stores {
		for i := range cur.Stores[v] {
			if prev.Stores[v][i] != cur.Stores[v][i] {
				n++
			}
		}
	}
	return n
}

// evaluateOnTruth rescales the decision's serving paths to the realized
// demand, serving unanticipated requests from their nearest replica.
func evaluateOnTruth(h HourInput, dec *Decision) (cost, cong float64, err error) {
	truth := h.Truth
	byReq := map[placement.Request][]placement.ServingPath{}
	decTotal := map[placement.Request]float64{}
	for _, sp := range dec.Paths {
		byReq[sp.Req] = append(byReq[sp.Req], sp)
		decTotal[sp.Req] += sp.Rate
	}
	var paths []placement.ServingPath
	trees := map[graph.NodeID]graph.ShortestTree{}
	for _, rq := range truth.Requests() {
		lam := truth.Rates[rq.Item][rq.Node]
		if tot := decTotal[rq]; tot > rateEps {
			for _, sp := range byReq[rq] {
				paths = append(paths, placement.ServingPath{Req: rq, Path: sp.Path, Rate: lam * sp.Rate / tot})
			}
			continue
		}
		best, bestD := -1, math.Inf(1)
		for v := range dec.Placement.Stores {
			if dec.Placement.Stores[v][rq.Item] && h.Dist[v][rq.Node] < bestD {
				best, bestD = v, h.Dist[v][rq.Node]
			}
		}
		if best < 0 {
			return 0, 0, fmt.Errorf("no replica for unanticipated request %+v", rq)
		}
		tree, ok := trees[best]
		if !ok {
			tree = graph.Dijkstra(truth.G, best, nil, nil)
			trees[best] = tree
		}
		p, ok := tree.PathTo(truth.G, rq.Node)
		if !ok {
			return 0, 0, fmt.Errorf("requester %d unreachable from replica %d", rq.Node, best)
		}
		paths = append(paths, placement.ServingPath{Req: rq, Path: p, Rate: lam})
	}
	cost, _, cong = placement.EvaluateServing(truth, paths, dec.Placement)
	return cost, cong, nil
}
