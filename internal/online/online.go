// Package online simulates the paper's operational setting (Section 6):
// a network provider adjusts caching and routing decisions on an hourly
// basis from predicted demand, then serves whatever demand actually
// arrives. It walks a view trace hour by hour, re-optimizes with a
// pluggable policy, and records per-hour routing cost, congestion, and
// placement churn (items moved between consecutive hours - the operational
// cost of re-optimizing that a one-shot evaluation cannot see).
//
// Beyond the strict replay (Simulate), Run hardens the hourly control loop
// for degraded networks: each decision runs under a context deadline with
// bounded retry, its output can be validated against the feasibility
// invariants of internal/check, and any failure — timeout, solver error,
// infeasible output — degrades gracefully to the last-known-good placement
// with failed-link-aware nearest-replica rerouting instead of aborting the
// simulation. Per-hour degradation state (decision source, retries,
// unserved and unanticipated demand) is recorded in HourMetrics.
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"jcr/internal/check"
	"jcr/internal/graph"
	"jcr/internal/placement"
)

// rateEps is the request rate below which a decided total is treated as
// zero (the decision did not anticipate the request).
const rateEps = 1e-12

// Decision is one hour's chosen placement and serving paths.
type Decision struct {
	Placement *placement.Placement
	// Paths serve the decision demand; the simulator rescales them to
	// the realized demand (requests the decision did not anticipate fall
	// back to route-to-nearest-replica).
	Paths []placement.ServingPath
	// Unserved maps requests the decision knowingly leaves unserved
	// (no replica reachable on the degraded network, reported by
	// best-effort routing) to their decision-demand rate. Nil when the
	// decision serves everything.
	Unserved map[placement.Request]float64
}

// Policy decides one hour's placement and routing from the decision spec.
type Policy interface {
	// Name labels the policy in results.
	Name() string
	// Decide computes the hour's decision; dist is the all-pairs
	// least-cost matrix of spec.G. ctx, when non-nil, carries the
	// decision deadline; a policy that honors it returns promptly once
	// the deadline passes (the library solvers all do).
	Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error)
}

// DecisionSource records where an hour's applied decision came from.
type DecisionSource int

// Decision sources.
const (
	// SourceFresh is a successful decision from the policy this hour.
	SourceFresh DecisionSource = iota
	// SourceStale means the policy failed (error, timeout, or invalid
	// output) and the hour ran on the last-known-good placement with
	// nearest-replica rerouting.
	SourceStale
	// SourceRepaired is a fresh decision immediately after one or more
	// stale hours: the hour the controller recovered.
	SourceRepaired
)

func (s DecisionSource) String() string {
	switch s {
	case SourceFresh:
		return "fresh"
	case SourceStale:
		return "stale"
	case SourceRepaired:
		return "repaired"
	default:
		return fmt.Sprintf("DecisionSource(%d)", int(s))
	}
}

// HourMetrics records one simulated hour.
type HourMetrics struct {
	Hour       int
	Cost       float64
	Congestion float64
	// Churn counts (node, item) cache entries that changed versus the
	// previous hour's placement.
	Churn int
	// Demand is the total realized request rate of the hour.
	Demand float64
	// Unserved is the realized request rate the hour could not serve:
	// no replica of the item was reachable from the requester on the
	// (possibly degraded) network.
	Unserved float64
	// Unanticipated is the realized demand volume served through the
	// nearest-replica fallback because the decision did not anticipate
	// the request (its decided total was zero). Zero for stale hours,
	// where the whole hour runs on fallback routing by construction.
	Unanticipated float64
	// Source records whether the hour ran on a fresh, stale, or
	// just-repaired decision.
	Source DecisionSource
	// Retries counts failed Decide attempts before the applied one.
	Retries int
}

// Series is a policy's full simulation record.
type Series struct {
	Policy string
	Hours  []HourMetrics
}

// TotalCost sums the per-hour costs.
func (s *Series) TotalCost() float64 {
	var t float64
	for _, h := range s.Hours {
		t += h.Cost
	}
	return t
}

// MeanCongestion averages the per-hour congestion.
func (s *Series) MeanCongestion() float64 {
	if len(s.Hours) == 0 {
		return 0
	}
	var t float64
	for _, h := range s.Hours {
		t += h.Congestion
	}
	return t / float64(len(s.Hours))
}

// TotalChurn sums placement changes across hours.
func (s *Series) TotalChurn() int {
	t := 0
	for _, h := range s.Hours {
		t += h.Churn
	}
	return t
}

// ServedFraction is the demand-weighted fraction of realized demand the
// simulation served (1 when there was no demand).
func (s *Series) ServedFraction() float64 {
	var demand, unserved float64
	for _, h := range s.Hours {
		demand += h.Demand
		unserved += h.Unserved
	}
	if demand <= 0 {
		return 1
	}
	return 1 - unserved/demand
}

// DegradedHours counts hours that ran on a stale decision.
func (s *Series) DegradedHours() int {
	n := 0
	for _, h := range s.Hours {
		if h.Source == SourceStale {
			n++
		}
	}
	return n
}

// LongestOutage is the length of the longest run of consecutive stale
// hours: the worst-case recovery time of the control loop.
func (s *Series) LongestOutage() int {
	longest, run := 0, 0
	for _, h := range s.Hours {
		if h.Source == SourceStale {
			run++
			if run > longest {
				longest = run
			}
		} else {
			run = 0
		}
	}
	return longest
}

// TotalUnanticipated sums the unanticipated-demand volume across hours.
func (s *Series) TotalUnanticipated() float64 {
	var t float64
	for _, h := range s.Hours {
		t += h.Unanticipated
	}
	return t
}

// HourInput is one hour of workload: the demand the policy sees and the
// demand that actually arrives, over a shared network.
type HourInput struct {
	Hour     int
	Decision *placement.Spec
	Truth    *placement.Spec
	Dist     [][]float64
}

// Options harden the control loop of Run. The zero value reproduces
// Simulate exactly: no deadline, no retries, no validation, abort on the
// first policy error.
type Options struct {
	// Resilient degrades to the last-known-good placement with
	// nearest-replica rerouting when a decision fails (error, timeout,
	// or invalid output), instead of aborting the simulation. Unserved
	// and unreachable demand is then accounted in HourMetrics rather
	// than erroring.
	Resilient bool
	// DecideTimeout bounds each Decide attempt via a derived context
	// deadline. Requires a non-nil parent context; zero means no
	// deadline.
	DecideTimeout time.Duration
	// MaxRetries is how many times a failed Decide is retried before
	// the hour is declared degraded (or the run aborts, if not
	// Resilient).
	MaxRetries int
	// Backoff is the wait between retry attempts. The wait itself is
	// performed by Sleep, which the binary injects (library code never
	// owns a timer); with a nil Sleep the backoff duration is skipped
	// and retries are immediate, which is also what deterministic tests
	// want.
	Backoff time.Duration
	// Sleep waits the given duration or until ctx is done, returning
	// ctx's error if it fired first. Binaries pass a real timer-backed
	// implementation; nil means no waiting between retries.
	Sleep func(ctx context.Context, d time.Duration) error
	// Validate checks every fresh decision against the feasibility
	// invariants (cache capacities, path integrity, declared-unserved
	// service accounting) before applying it; an invalid decision is
	// treated as a failed attempt.
	Validate bool
	// NoTreeReuse disables the shortest-path-tree engine that carries
	// repaired trees across consecutive hours of the truth evaluation
	// (fault hours reuse the previous hour's trees, incrementally fixed
	// for the links that moved). The engine is bit-for-bit invisible in
	// every metric — disabling it only recomputes each tree cold — so
	// this switch exists for A/B timing and determinism tests, mirroring
	// AlternatingPolicy.NoSolverReuse.
	NoTreeReuse bool
}

// Simulate runs the policy over the given hours, aborting on the first
// policy error (the strict historical behavior).
func Simulate(policy Policy, hours []HourInput) (*Series, error) {
	return Run(nil, policy, hours, Options{})
}

// Run walks the hours under the given hardening options. ctx, when
// non-nil, cancels the whole simulation between hours and carries the
// per-decision deadline of Options.DecideTimeout.
func Run(ctx context.Context, policy Policy, hours []HourInput, opts Options) (*Series, error) {
	if opts.DecideTimeout > 0 && ctx == nil {
		return nil, errors.New("online: Options.DecideTimeout requires a non-nil context")
	}
	if opts.MaxRetries < 0 || opts.DecideTimeout < 0 || opts.Backoff < 0 {
		return nil, fmt.Errorf("online: negative Options values: %+v", opts)
	}
	out := &Series{Policy: policy.Name()}
	var eng *graph.Engine // nil when NoTreeReuse: every truth tree cold
	if !opts.NoTreeReuse {
		eng = graph.NewEngine()
	}
	var prev *placement.Placement     // previous hour's applied placement, for churn
	var lastGood *placement.Placement // placement of the last fresh decision
	stale := false
	for _, h := range hours {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("online: %s at hour %d: %w", policy.Name(), h.Hour, err)
			}
		}
		dec, retries, derr := decideWithRetry(ctx, policy, h, opts)
		if derr == nil && opts.Validate {
			if verr := validateDecision(h.Decision, dec); verr != nil {
				derr = fmt.Errorf("invalid decision: %w", verr)
			}
		}
		source := SourceFresh
		if derr != nil {
			if !opts.Resilient {
				return nil, fmt.Errorf("online: %s at hour %d: %w", policy.Name(), h.Hour, derr)
			}
			dec = fallbackDecision(h, lastGood)
			source = SourceStale
		} else {
			if stale {
				source = SourceRepaired
			}
			lastGood = dec.Placement
		}
		stale = source == SourceStale

		ev, err := evaluateOnTruth(h, dec, opts.Resilient, eng)
		if err != nil {
			return nil, fmt.Errorf("online: %s at hour %d: %w", policy.Name(), h.Hour, err)
		}
		unanticipated := ev.unanticipated
		if source == SourceStale {
			// A stale hour serves everything by fallback; the metric
			// tracks prediction misses, not degraded operation.
			unanticipated = 0
		}
		out.Hours = append(out.Hours, HourMetrics{
			Hour:          h.Hour,
			Cost:          ev.cost,
			Congestion:    ev.cong,
			Churn:         churn(prev, dec.Placement),
			Demand:        ev.demand,
			Unserved:      ev.unserved,
			Unanticipated: unanticipated,
			Source:        source,
			Retries:       retries,
		})
		prev = dec.Placement
	}
	return out, nil
}

// decideWithRetry runs Decide up to 1+MaxRetries times, each attempt under
// its own DecideTimeout deadline, waiting Backoff between attempts. It
// returns the number of failed attempts before the returned outcome.
func decideWithRetry(ctx context.Context, policy Policy, h HourInput, opts Options) (*Decision, int, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 && opts.Backoff > 0 && opts.Sleep != nil {
			if err := opts.Sleep(ctx, opts.Backoff); err != nil {
				return nil, attempt, lastErr
			}
		}
		dec, err := decideOnce(ctx, policy, h, opts.DecideTimeout)
		if err == nil {
			return dec, attempt, nil
		}
		lastErr = err
		if ctx != nil && ctx.Err() != nil {
			// The simulation deadline itself (not just this attempt's)
			// is gone; retrying cannot succeed.
			return nil, attempt, lastErr
		}
		if attempt >= opts.MaxRetries {
			return nil, attempt, lastErr
		}
	}
}

// decideOnce is one Decide attempt under its own deadline.
func decideOnce(ctx context.Context, policy Policy, h HourInput, timeout time.Duration) (*Decision, error) {
	dctx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	dec, err := policy.Decide(dctx, h.Decision, h.Dist)
	if err != nil {
		return nil, err
	}
	if dec == nil || dec.Placement == nil {
		return nil, errors.New("policy returned no decision")
	}
	return dec, nil
}

// validateDecision checks a fresh decision against the feasibility
// invariants on the decision spec: cache capacities (Eq. 1f) and serving
// integrity with declared-unserved accounting (Eq. 1b-1c; congestion is
// permitted, as in the paper's evaluation).
func validateDecision(spec *placement.Spec, dec *Decision) error {
	return check.PartialFlow(spec, dec.Placement, dec.Paths, dec.Unserved, true)
}

// fallbackDecision builds the degraded hour's decision: the last-known-good
// placement (or the pinned-only placement if no decision ever succeeded),
// evicted down to the current — possibly degraded — cache capacities. It
// carries no paths, so every request is served by nearest-replica routing
// on the hour's distance matrix, which reflects the failed links.
func fallbackDecision(h HourInput, lastGood *placement.Placement) *Decision {
	var pl *placement.Placement
	if lastGood != nil {
		pl = lastGood.Clone()
	} else {
		pl = h.Decision.NewPlacement()
	}
	h.Decision.EvictToFit(pl)
	return &Decision{Placement: pl}
}

// churn counts differing cache entries; the first hour has zero churn.
func churn(prev, cur *placement.Placement) int {
	if prev == nil {
		return 0
	}
	n := 0
	for v := range cur.Stores {
		for i := range cur.Stores[v] {
			if prev.Stores[v][i] != cur.Stores[v][i] {
				n++
			}
		}
	}
	return n
}

// hourEval is the outcome of evaluating one hour's decision on the truth.
type hourEval struct {
	cost, cong                      float64
	demand, unserved, unanticipated float64
}

// evaluateOnTruth rescales the decision's serving paths to the realized
// demand, serving unanticipated requests from their nearest replica. With
// bestEffort, demand with no reachable replica is accounted as unserved
// instead of failing the hour (degraded networks legitimately strand
// requesters); otherwise unreachable demand is an error, the strict
// historical behavior. The engine, when non-nil, serves the nearest-replica
// trees from its cross-hour cache (identical bit for bit to computing them
// cold); the local map still memoizes within the hour either way.
func evaluateOnTruth(h HourInput, dec *Decision, bestEffort bool, eng *graph.Engine) (hourEval, error) {
	var ev hourEval
	truth := h.Truth
	byReq := map[placement.Request][]placement.ServingPath{}
	decTotal := map[placement.Request]float64{}
	for _, sp := range dec.Paths {
		byReq[sp.Req] = append(byReq[sp.Req], sp)
		decTotal[sp.Req] += sp.Rate
	}
	var paths []placement.ServingPath
	trees := map[graph.NodeID]graph.ShortestTree{}
	for _, rq := range truth.Requests() {
		lam := truth.Rates[rq.Item][rq.Node]
		ev.demand += lam
		if tot := decTotal[rq]; tot > rateEps {
			for _, sp := range byReq[rq] {
				paths = append(paths, placement.ServingPath{Req: rq, Path: sp.Path, Rate: lam * sp.Rate / tot})
			}
			continue
		}
		best, bestD := -1, math.Inf(1)
		for v := range dec.Placement.Stores {
			if dec.Placement.Stores[v][rq.Item] && h.Dist[v][rq.Node] < bestD {
				best, bestD = v, h.Dist[v][rq.Node]
			}
		}
		if best < 0 {
			if bestEffort {
				ev.unserved += lam
				continue
			}
			return hourEval{}, fmt.Errorf("no replica for unanticipated request %+v", rq)
		}
		tree, ok := trees[best]
		if !ok {
			tree = eng.Tree(truth.G, best)
			trees[best] = tree
		}
		p, ok := tree.PathTo(truth.G, rq.Node)
		if !ok {
			if bestEffort {
				ev.unserved += lam
				continue
			}
			return hourEval{}, fmt.Errorf("requester %d unreachable from replica %d", rq.Node, best)
		}
		paths = append(paths, placement.ServingPath{Req: rq, Path: p, Rate: lam})
		if _, declared := dec.Unserved[rq]; !declared {
			// Served through the fallback without the decision having
			// planned for it: a prediction miss, the unanticipated-
			// demand volume of the hour.
			ev.unanticipated += lam
		}
	}
	ev.cost, _, ev.cong = placement.EvaluateServing(truth, paths, dec.Placement)
	return ev, nil
}
