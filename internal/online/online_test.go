package online

import (
	"math"
	"math/rand"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// buildHours makes a small multi-hour workload whose hot item flips
// between the two edge caches at hour 2, with a mild prediction error.
func buildHours(t *testing.T) []HourInput {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 50, 100)
	g.AddEdge(1, 2, 2, 100)
	g.AddEdge(1, 3, 3, 100)
	dist := graph.AllPairs(g)
	mk := func(r0at2, r0at3, r1at2, r1at3 float64) *placement.Spec {
		return &placement.Spec{
			G:        g,
			NumItems: 2,
			CacheCap: []float64{0, 0, 1, 1},
			Pinned:   []graph.NodeID{0},
			Rates:    [][]float64{{0, 0, r0at2, r0at3}, {0, 0, r1at2, r1at3}},
		}
	}
	var hours []HourInput
	for h := 0; h < 4; h++ {
		var truth *placement.Spec
		if h < 2 {
			truth = mk(8, 1, 1, 6)
		} else {
			truth = mk(1, 6, 8, 1) // popularity flip
		}
		// Decision demand: truth with 10% noise.
		dec := mk(0, 0, 0, 0)
		rng := rand.New(rand.NewSource(int64(h)))
		for i := range truth.Rates {
			for v := range truth.Rates[i] {
				dec.Rates[i][v] = truth.Rates[i][v] * (1 + 0.1*rng.NormFloat64())
				if dec.Rates[i][v] < 0 {
					dec.Rates[i][v] = 0
				}
			}
		}
		hours = append(hours, HourInput{Hour: h, Decision: dec, Truth: truth, Dist: dist})
	}
	return hours
}

func TestSimulateAlternatingAdapts(t *testing.T) {
	hours := buildHours(t)
	adaptive, err := Simulate(&AlternatingPolicy{Rng: rand.New(rand.NewSource(1))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Simulate(&StaticPolicy{Inner: &AlternatingPolicy{Rng: rand.New(rand.NewSource(1))}}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Hours) != 4 || len(static.Hours) != 4 {
		t.Fatalf("hour counts: adaptive %d, static %d", len(adaptive.Hours), len(static.Hours))
	}
	// The popularity flips at hour 2: adapting must beat the frozen
	// decision overall.
	if adaptive.TotalCost() >= static.TotalCost() {
		t.Errorf("adaptive cost %v should beat static %v after the popularity flip",
			adaptive.TotalCost(), static.TotalCost())
	}
	// Static never churns; adaptive churns at the flip.
	if static.TotalChurn() != 0 {
		t.Errorf("static churn = %d, want 0", static.TotalChurn())
	}
	if adaptive.TotalChurn() == 0 {
		t.Error("adaptive policy should move items at the popularity flip")
	}
	// First hour never counts churn.
	if adaptive.Hours[0].Churn != 0 {
		t.Errorf("first-hour churn = %d, want 0", adaptive.Hours[0].Churn)
	}
}

func TestWarmStartReducesChurn(t *testing.T) {
	hours := buildHours(t)
	cold, err := Simulate(&AlternatingPolicy{Rng: rand.New(rand.NewSource(2))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(&AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(2))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalChurn() > cold.TotalChurn() {
		t.Errorf("warm-start churn %d should not exceed cold churn %d", warm.TotalChurn(), cold.TotalChurn())
	}
}

func TestBaselinePolicies(t *testing.T) {
	hours := buildHours(t)
	for _, pol := range []Policy{
		SPPolicy{Origin: 0},
		RNRPolicy{},
		&AlternatingPolicy{Fractional: true, Rng: rand.New(rand.NewSource(3))},
	} {
		s, err := Simulate(pol, hours)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if s.Policy != pol.Name() || len(s.Hours) != len(hours) {
			t.Errorf("%s: malformed series", pol.Name())
		}
		for _, h := range s.Hours {
			if h.Cost < 0 || math.IsNaN(h.Cost) || math.IsNaN(h.Congestion) {
				t.Errorf("%s hour %d: bad metrics %+v", pol.Name(), h.Hour, h)
			}
		}
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := &Series{Policy: "x", Hours: []HourMetrics{
		{Cost: 10, Congestion: 1, Churn: 2},
		{Cost: 20, Congestion: 3, Churn: 0},
	}}
	if s.TotalCost() != 30 || s.MeanCongestion() != 2 || s.TotalChurn() != 2 {
		t.Errorf("aggregates wrong: %v %v %v", s.TotalCost(), s.MeanCongestion(), s.TotalChurn())
	}
	empty := &Series{}
	if empty.MeanCongestion() != 0 {
		t.Error("empty series mean congestion should be 0")
	}
}

func TestSimulateErrorPropagation(t *testing.T) {
	// An hour whose decision spec is broken must surface the policy
	// error with context, not panic.
	g := graph.New(2)
	g.AddEdge(0, 1, 1, 10)
	bad := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0}, // wrong length
		Rates:    [][]float64{{0, 1}},
	}
	_, err := Simulate(&AlternatingPolicy{}, []HourInput{{
		Hour: 0, Decision: bad, Truth: bad, Dist: graph.AllPairs(g),
	}})
	if err == nil {
		t.Fatal("broken spec accepted")
	}
}

func TestEvaluateOnTruthUnanticipated(t *testing.T) {
	// The decision served nothing (empty paths, empty placement beyond
	// the pinned origin): every true request must fall back to RNR.
	g := graph.New(2)
	g.AddEdge(0, 1, 4, 10)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 2}},
	}
	dec := &Decision{Placement: s.NewPlacement()}
	cost, _, err := evaluateOnTruth(HourInput{Truth: s, Dist: graph.AllPairs(g)}, dec)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 8 {
		t.Errorf("fallback cost = %v, want 8", cost)
	}
}
