package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"jcr/internal/faults"
	"jcr/internal/graph"
	"jcr/internal/placement"
)

// buildHours makes a small multi-hour workload whose hot item flips
// between the two edge caches at hour 2, with a mild prediction error.
func buildHours(t *testing.T) []HourInput {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1, 50, 100)
	g.AddEdge(1, 2, 2, 100)
	g.AddEdge(1, 3, 3, 100)
	dist := graph.AllPairs(g)
	mk := func(r0at2, r0at3, r1at2, r1at3 float64) *placement.Spec {
		return &placement.Spec{
			G:        g,
			NumItems: 2,
			CacheCap: []float64{0, 0, 1, 1},
			Pinned:   []graph.NodeID{0},
			Rates:    [][]float64{{0, 0, r0at2, r0at3}, {0, 0, r1at2, r1at3}},
		}
	}
	var hours []HourInput
	for h := 0; h < 4; h++ {
		var truth *placement.Spec
		if h < 2 {
			truth = mk(8, 1, 1, 6)
		} else {
			truth = mk(1, 6, 8, 1) // popularity flip
		}
		// Decision demand: truth with 10% noise.
		dec := mk(0, 0, 0, 0)
		rng := rand.New(rand.NewSource(int64(h)))
		for i := range truth.Rates {
			for v := range truth.Rates[i] {
				dec.Rates[i][v] = truth.Rates[i][v] * (1 + 0.1*rng.NormFloat64())
				if dec.Rates[i][v] < 0 {
					dec.Rates[i][v] = 0
				}
			}
		}
		hours = append(hours, HourInput{Hour: h, Decision: dec, Truth: truth, Dist: dist})
	}
	return hours
}

func TestSimulateAlternatingAdapts(t *testing.T) {
	hours := buildHours(t)
	adaptive, err := Simulate(&AlternatingPolicy{Rng: rand.New(rand.NewSource(1))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	static, err := Simulate(&StaticPolicy{Inner: &AlternatingPolicy{Rng: rand.New(rand.NewSource(1))}}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Hours) != 4 || len(static.Hours) != 4 {
		t.Fatalf("hour counts: adaptive %d, static %d", len(adaptive.Hours), len(static.Hours))
	}
	// The popularity flips at hour 2: adapting must beat the frozen
	// decision overall.
	if adaptive.TotalCost() >= static.TotalCost() {
		t.Errorf("adaptive cost %v should beat static %v after the popularity flip",
			adaptive.TotalCost(), static.TotalCost())
	}
	// Static never churns; adaptive churns at the flip.
	if static.TotalChurn() != 0 {
		t.Errorf("static churn = %d, want 0", static.TotalChurn())
	}
	if adaptive.TotalChurn() == 0 {
		t.Error("adaptive policy should move items at the popularity flip")
	}
	// First hour never counts churn.
	if adaptive.Hours[0].Churn != 0 {
		t.Errorf("first-hour churn = %d, want 0", adaptive.Hours[0].Churn)
	}
}

func TestWarmStartReducesChurn(t *testing.T) {
	hours := buildHours(t)
	cold, err := Simulate(&AlternatingPolicy{Rng: rand.New(rand.NewSource(2))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Simulate(&AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(2))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalChurn() > cold.TotalChurn() {
		t.Errorf("warm-start churn %d should not exceed cold churn %d", warm.TotalChurn(), cold.TotalChurn())
	}
}

func TestBaselinePolicies(t *testing.T) {
	hours := buildHours(t)
	for _, pol := range []Policy{
		SPPolicy{Origin: 0},
		RNRPolicy{},
		&AlternatingPolicy{Fractional: true, Rng: rand.New(rand.NewSource(3))},
	} {
		s, err := Simulate(pol, hours)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if s.Policy != pol.Name() || len(s.Hours) != len(hours) {
			t.Errorf("%s: malformed series", pol.Name())
		}
		for _, h := range s.Hours {
			if h.Cost < 0 || math.IsNaN(h.Cost) || math.IsNaN(h.Congestion) {
				t.Errorf("%s hour %d: bad metrics %+v", pol.Name(), h.Hour, h)
			}
		}
	}
}

func TestSeriesAggregates(t *testing.T) {
	s := &Series{Policy: "x", Hours: []HourMetrics{
		{Cost: 10, Congestion: 1, Churn: 2},
		{Cost: 20, Congestion: 3, Churn: 0},
	}}
	if s.TotalCost() != 30 || s.MeanCongestion() != 2 || s.TotalChurn() != 2 {
		t.Errorf("aggregates wrong: %v %v %v", s.TotalCost(), s.MeanCongestion(), s.TotalChurn())
	}
	empty := &Series{}
	if empty.MeanCongestion() != 0 {
		t.Error("empty series mean congestion should be 0")
	}
}

func TestSimulateErrorPropagation(t *testing.T) {
	// An hour whose decision spec is broken must surface the policy
	// error with context, not panic.
	g := graph.New(2)
	g.AddEdge(0, 1, 1, 10)
	bad := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0}, // wrong length
		Rates:    [][]float64{{0, 1}},
	}
	_, err := Simulate(&AlternatingPolicy{}, []HourInput{{
		Hour: 0, Decision: bad, Truth: bad, Dist: graph.AllPairs(g),
	}})
	if err == nil {
		t.Fatal("broken spec accepted")
	}
}

func TestEvaluateOnTruthUnanticipated(t *testing.T) {
	// The decision served nothing (empty paths, empty placement beyond
	// the pinned origin): every true request must fall back to RNR.
	g := graph.New(2)
	g.AddEdge(0, 1, 4, 10)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 2}},
	}
	dec := &Decision{Placement: s.NewPlacement()}
	ev, err := evaluateOnTruth(HourInput{Truth: s, Dist: graph.AllPairs(g)}, dec, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.cost != 8 {
		t.Errorf("fallback cost = %v, want 8", ev.cost)
	}
	if ev.demand != 2 || ev.unserved != 0 {
		t.Errorf("demand/unserved = %v/%v, want 2/0", ev.demand, ev.unserved)
	}
	if ev.unanticipated != 2 {
		t.Errorf("unanticipated = %v, want 2 (nothing was decided)", ev.unanticipated)
	}
}

// scriptedPolicy runs a per-call function, for fault-injection tests.
type scriptedPolicy struct {
	name  string
	calls int
	fn    func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error)
}

func (p *scriptedPolicy) Name() string { return p.name }

func (p *scriptedPolicy) Decide(ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
	call := p.calls
	p.calls++
	return p.fn(call, ctx, spec, dist)
}

// TestFaultResilientIdleIsBitForBit: with no faults and no failing
// decisions, the hardened Run must reproduce the strict Simulate series
// exactly — same costs, congestion, and churn at every hour.
func TestFaultResilientIdleIsBitForBit(t *testing.T) {
	hours := buildHours(t)
	strict, err := Simulate(&AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(7))}, hours)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Run(context.Background(), &AlternatingPolicy{WarmStart: true, Rng: rand.New(rand.NewSource(7))},
		hours, Options{Resilient: true, MaxRetries: 2, Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(hard.Hours) != len(strict.Hours) {
		t.Fatalf("hour counts differ: %d vs %d", len(hard.Hours), len(strict.Hours))
	}
	for i := range strict.Hours {
		a, b := strict.Hours[i], hard.Hours[i]
		if a.Cost != b.Cost || a.Congestion != b.Congestion || a.Churn != b.Churn {
			t.Errorf("hour %d diverges: strict %+v, resilient %+v", a.Hour, a, b)
		}
		if b.Source != SourceFresh || b.Retries != 0 {
			t.Errorf("hour %d: source %v retries %d, want fresh/0", b.Hour, b.Source, b.Retries)
		}
		if b.Unserved != 0 {
			t.Errorf("hour %d: unserved %v on an intact network", b.Hour, b.Unserved)
		}
	}
	if hard.ServedFraction() != 1 || hard.DegradedHours() != 0 || hard.LongestOutage() != 0 {
		t.Errorf("idle run reports degradation: served %v, degraded %d, outage %d",
			hard.ServedFraction(), hard.DegradedHours(), hard.LongestOutage())
	}
}

// TestFaultTimeoutDegradesToLastKnownGood: when Decide blocks past its
// deadline, the hour must run on the last-known-good placement (stale),
// and the next successful decision must be marked repaired.
func TestFaultTimeoutDegradesToLastKnownGood(t *testing.T) {
	hours := buildHours(t)
	good := hours[0].Decision.NewPlacement()
	good.Stores[2][0] = true // cache the hot item at edge node 2
	pol := &scriptedPolicy{
		name: "block-on-second",
		fn: func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
			if call == 1 || call == 2 { // hours 1 and 2 hang until the deadline
				<-ctx.Done()
				return nil, ctx.Err()
			}
			return &Decision{Placement: good.Clone()}, nil
		},
	}
	series, err := Run(context.Background(), pol, hours, Options{
		Resilient:     true,
		DecideTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSources := []DecisionSource{SourceFresh, SourceStale, SourceStale, SourceRepaired}
	for i, h := range series.Hours {
		if h.Source != wantSources[i] {
			t.Errorf("hour %d source = %v, want %v", h.Hour, h.Source, wantSources[i])
		}
	}
	// The stale hours must reuse the hour-0 placement bit for bit (no
	// capacity changed, so no eviction), hence zero churn.
	if series.Hours[1].Churn != 0 || series.Hours[2].Churn != 0 {
		t.Errorf("stale hours churned: %d, %d — last-known-good not reused",
			series.Hours[1].Churn, series.Hours[2].Churn)
	}
	if got := series.DegradedHours(); got != 2 {
		t.Errorf("DegradedHours = %d, want 2", got)
	}
	if got := series.LongestOutage(); got != 2 {
		t.Errorf("LongestOutage = %d, want 2", got)
	}
	// Strict mode must surface the timeout instead of degrading.
	pol2 := &scriptedPolicy{name: "block-always", fn: func(int, context.Context, *placement.Spec, [][]float64) (*Decision, error) {
		return nil, context.DeadlineExceeded
	}}
	if _, err := Run(context.Background(), pol2, hours[:1], Options{DecideTimeout: time.Millisecond}); err == nil {
		t.Error("strict run swallowed a decision failure")
	}
}

// TestFaultTimeoutRequiresContext: a decide deadline without a parent
// context is a configuration error, not a silent no-op.
func TestFaultTimeoutRequiresContext(t *testing.T) {
	hours := buildHours(t)
	_, err := Run(nil, &AlternatingPolicy{}, hours, Options{DecideTimeout: time.Second})
	if err == nil {
		t.Fatal("nil context with DecideTimeout accepted")
	}
}

// TestFaultRetryRecovers: transient decision failures within MaxRetries
// must yield a fresh decision and record the attempts.
func TestFaultRetryRecovers(t *testing.T) {
	hours := buildHours(t)[:1]
	good := hours[0].Decision.NewPlacement()
	pol := &scriptedPolicy{
		name: "flaky",
		fn: func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
			if call < 2 {
				return nil, fmt.Errorf("transient failure %d", call)
			}
			return &Decision{Placement: good.Clone()}, nil
		},
	}
	series, err := Run(context.Background(), pol, hours, Options{Resilient: true, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := series.Hours[0]
	if h.Source != SourceFresh || h.Retries != 2 {
		t.Errorf("source %v retries %d, want fresh after 2 retries", h.Source, h.Retries)
	}
	// One retry fewer must exhaust the budget and degrade instead.
	pol.calls = 0
	series, err = Run(context.Background(), pol, hours, Options{Resilient: true, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if series.Hours[0].Source != SourceStale {
		t.Errorf("source %v, want stale when retries are exhausted", series.Hours[0].Source)
	}
}

// TestFaultValidateRejectsInfeasible: a decision violating cache
// capacities must be treated as a failure (degraded under Resilient,
// fatal otherwise).
func TestFaultValidateRejectsInfeasible(t *testing.T) {
	hours := buildHours(t)[:1]
	pol := &scriptedPolicy{
		name: "overfull",
		fn: func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
			pl := spec.NewPlacement()
			pl.Stores[2][0] = true
			pl.Stores[2][1] = true // capacity 1: infeasible
			return &Decision{Placement: pl}, nil
		},
	}
	if _, err := Run(context.Background(), pol, hours, Options{Validate: true}); err == nil {
		t.Error("strict validating run accepted an infeasible placement")
	}
	pol.calls = 0
	series, err := Run(context.Background(), pol, hours, Options{Validate: true, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	if series.Hours[0].Source != SourceStale {
		t.Errorf("source %v, want stale after validation failure", series.Hours[0].Source)
	}
}

// TestFaultUnservedAccounting: on a partitioned network, best-effort
// evaluation accounts stranded demand as unserved instead of erroring,
// and ServedFraction reflects it.
func TestFaultUnservedAccounting(t *testing.T) {
	// Node 2 is isolated: no arcs at all reach it.
	g := graph.New(3)
	g.AddEdge(0, 1, 1, 10)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 0, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 3, 1}},
	}
	hour := HourInput{Hour: 0, Decision: s, Truth: s, Dist: graph.AllPairs(g)}
	pol := &scriptedPolicy{name: "origin-only", fn: func(int, context.Context, *placement.Spec, [][]float64) (*Decision, error) {
		return &Decision{Placement: s.NewPlacement()}, nil
	}}
	series, err := Run(context.Background(), pol, []HourInput{hour}, Options{Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	h := series.Hours[0]
	if h.Demand != 4 || h.Unserved != 1 {
		t.Errorf("demand/unserved = %v/%v, want 4/1", h.Demand, h.Unserved)
	}
	if got, want := series.ServedFraction(), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("ServedFraction = %v, want %v", got, want)
	}
	// Strict evaluation must keep erroring on stranded demand.
	if _, err := Run(context.Background(), pol, []HourInput{hour}, Options{}); err == nil {
		t.Error("strict run served a partitioned network silently")
	}
}

// TestFaultFallbackEvictsToDegradedCapacity: when the hour's caches are
// smaller than the last-known-good placement, the fallback must evict to
// fit rather than apply an infeasible placement.
func TestFaultFallbackEvictsToDegradedCapacity(t *testing.T) {
	hours := buildHours(t)[:2]
	// Hour 1's caches fail: capacity zero at both edge nodes.
	degraded := *hours[1].Decision
	degraded.CacheCap = []float64{0, 0, 0, 0}
	hours[1].Decision = &degraded
	tr := *hours[1].Truth
	tr.CacheCap = degraded.CacheCap
	hours[1].Truth = &tr
	good := hours[0].Decision.NewPlacement()
	good.Stores[2][0] = true
	pol := &scriptedPolicy{
		name: "fail-second",
		fn: func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
			if call > 0 {
				return nil, fmt.Errorf("controller down")
			}
			return &Decision{Placement: good.Clone()}, nil
		},
	}
	series, err := Run(context.Background(), pol, hours, Options{Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	h := series.Hours[1]
	if h.Source != SourceStale {
		t.Fatalf("hour 1 source = %v, want stale", h.Source)
	}
	// The cached copy at node 2 was lost with the cache: one eviction,
	// counted as churn against hour 0.
	if h.Churn != 1 {
		t.Errorf("hour 1 churn = %d, want 1 (the evicted entry)", h.Churn)
	}
}

// TestTreeReuseIsBitForBit: the shortest-path-tree engine must be
// invisible in the series. An online run over a faulty horizon — links
// failing, degrading, and recovering, every truth request served through
// the nearest-replica fallback — must equal the same run with every tree
// computed cold, field for field.
func TestTreeReuseIsBitForBit(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 2, 2, 10)
	g.AddEdge(2, 3, 1, 10)
	g.AddEdge(3, 4, 2, 10)
	g.AddEdge(0, 4, 3, 10)
	g.AddEdge(1, 3, 2, 10)
	sc := &faults.Scenario{Events: []faults.Event{
		{Kind: faults.LinkDown, Start: 1, Duration: 2, Link: 5},
		{Kind: faults.LinkDown, Start: 2, Duration: 2, Link: 0},
		{Kind: faults.LinkDegrade, Start: 3, Duration: 1, Link: 2, Factor: 0.5},
	}}
	mk := func() *placement.Spec {
		return &placement.Spec{
			G: g, NumItems: 2,
			CacheCap: []float64{0, 1, 1, 1, 0},
			Pinned:   []graph.NodeID{0},
			Rates:    [][]float64{{0, 0, 2, 1, 3}, {0, 1, 0, 2, 1}},
		}
	}
	var hours []HourInput
	for h := 0; h < 5; h++ {
		dec, tr, _, err := sc.Apply(h, mk(), mk())
		if err != nil {
			t.Fatal(err)
		}
		hours = append(hours, HourInput{Hour: h, Decision: dec, Truth: tr, Dist: graph.AllPairs(dec.G)})
	}
	// The decision never plans any serving, so every request of every hour
	// goes through the nearest-replica trees the engine caches.
	pol := func() Policy {
		return &scriptedPolicy{name: "origin-only", fn: func(_ int, _ context.Context, spec *placement.Spec, _ [][]float64) (*Decision, error) {
			return &Decision{Placement: spec.NewPlacement()}, nil
		}}
	}
	warm, err := Run(context.Background(), pol(), hours, Options{Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(context.Background(), pol(), hours, Options{Resilient: true, NoTreeReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, cold) {
		t.Fatalf("tree reuse changed the series:\nwarm %+v\ncold %+v", warm, cold)
	}
	var touched float64
	for _, h := range warm.Hours {
		touched += h.Unanticipated + h.Unserved
	}
	if touched == 0 {
		t.Fatal("horizon never exercised the fallback trees")
	}
}

// TestRunFirstHourDecideFails: when the very first hour's Decide fails
// there is no last-known-good placement; the resilient fallback must run
// the hour on the pinned-only placement (origin serves everything) and the
// controller must report recovery on the next hour.
func TestRunFirstHourDecideFails(t *testing.T) {
	hours := buildHours(t)
	inner := &AlternatingPolicy{Rng: rand.New(rand.NewSource(3))}
	pol := &scriptedPolicy{
		name: "first-hour-dead",
		fn: func(call int, ctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
			if call == 0 {
				return nil, fmt.Errorf("injected first-hour failure")
			}
			return inner.Decide(ctx, spec, dist)
		},
	}
	series, err := Run(context.Background(), pol, hours, Options{Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Hours) != len(hours) {
		t.Fatalf("ran %d hours", len(series.Hours))
	}
	h0 := series.Hours[0]
	if h0.Source != SourceStale {
		t.Fatalf("hour 0 source %v, want stale", h0.Source)
	}
	// Pinned-only fallback: every request is served from the origin, so
	// the hour's cost is the full origin-distance volume and nothing is
	// unserved on the intact network.
	if h0.Unserved != 0 {
		t.Fatalf("hour 0 unserved %v on an intact network", h0.Unserved)
	}
	var want float64
	truth := hours[0].Truth
	for _, rq := range truth.Requests() {
		want += truth.Rates[rq.Item][rq.Node] * hours[0].Dist[0][rq.Node]
	}
	if math.Abs(h0.Cost-want) > 1e-9*(1+want) {
		t.Fatalf("hour 0 cost %v, pinned-only fallback costs %v", h0.Cost, want)
	}
	if series.Hours[1].Source != SourceRepaired {
		t.Fatalf("hour 1 source %v, want repaired", series.Hours[1].Source)
	}
	if series.DegradedHours() != 1 || series.LongestOutage() != 1 {
		t.Fatalf("degradation accounting: %d degraded, longest %d",
			series.DegradedHours(), series.LongestOutage())
	}
}

// TestRunCtxCanceledMidRun: cancellation between hours aborts the walk
// with context.Canceled — resilient or not, since resilience covers
// decision failures, never the caller pulling the plug.
func TestRunCtxCanceledMidRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"strict", Options{}},
		{"resilient", Options{Resilient: true, MaxRetries: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hours := buildHours(t)
			ctx, cancel := context.WithCancel(context.Background())
			const stopAfter = 2
			pol := &scriptedPolicy{
				name: "self-canceling",
				fn: func(call int, dctx context.Context, spec *placement.Spec, dist [][]float64) (*Decision, error) {
					if call == stopAfter {
						// The caller goes away while hour 2's decision is
						// in flight.
						cancel()
					}
					return (&RNRPolicy{}).Decide(dctx, spec, dist)
				},
			}
			series, err := Run(ctx, pol, hours, tc.opts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Run = %v, want context.Canceled", err)
			}
			if series != nil {
				t.Fatalf("canceled Run returned a series")
			}
			if pol.calls != stopAfter+1 {
				t.Fatalf("policy ran %d times after cancellation at call %d", pol.calls, stopAfter)
			}
		})
	}
}
