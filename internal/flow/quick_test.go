package flow

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jcr/internal/graph"
)

// quickNet is a random connected capacitated network for testing/quick.
type quickNet struct {
	G     *graph.Graph
	Value float64
}

// Generate implements quick.Generator.
func (quickNet) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 3 + rng.Intn(7)
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddArc(v, v+1, float64(1+rng.Intn(15)), 1+9*rng.Float64())
	}
	extra := rng.Intn(2 * n)
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddArc(u, v, float64(1+rng.Intn(15)), 1+9*rng.Float64())
		}
	}
	return reflect.ValueOf(quickNet{G: g, Value: 0.5 + 3*rng.Float64()})
}

// Min-cost flow output conserves flow at interior nodes, respects
// capacities, ships the requested value, and its cost equals the arc-cost
// sum.
func TestQuickMinCostFlowInvariants(t *testing.T) {
	property := func(qn quickNet) bool {
		src, dst := 0, qn.G.NumNodes()-1
		mf := MaxFlow(qn.G, src, dst)
		if mf.Value <= 0 {
			return true
		}
		value := math.Min(qn.Value, mf.Value)
		res, err := MinCostFlow(qn.G, src, dst, value)
		if err != nil {
			return false
		}
		if math.Abs(res.Value-value) > 1e-6*(1+value) {
			return false
		}
		for v := 0; v < qn.G.NumNodes(); v++ {
			net := NetOutflow(qn.G, res.Arc, v)
			want := 0.0
			switch v {
			case src:
				want = value
			case dst:
				want = -value
			}
			if math.Abs(net-want) > 1e-6*(1+value) {
				return false
			}
		}
		var cost float64
		for id, f := range res.Arc {
			if f < -1e-9 || f > qn.G.Arc(id).Cap+1e-6 {
				return false
			}
			cost += f * qn.G.Arc(id).Cost
		}
		return math.Abs(cost-res.Cost) <= 1e-6*(1+cost)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Max-flow equals min-cut over a sample of cuts (weak duality check: the
// flow value never exceeds any cut capacity).
func TestQuickMaxFlowWeakDuality(t *testing.T) {
	property := func(qn quickNet, cutSeed int64) bool {
		src, dst := 0, qn.G.NumNodes()-1
		mf := MaxFlow(qn.G, src, dst)
		if math.IsInf(mf.Value, 1) {
			return true
		}
		rng := rand.New(rand.NewSource(cutSeed))
		for trial := 0; trial < 10; trial++ {
			inS := make([]bool, qn.G.NumNodes())
			inS[src] = true
			for v := 1; v < qn.G.NumNodes()-1; v++ {
				inS[v] = rng.Intn(2) == 0
			}
			var cut float64
			for id := 0; id < qn.G.NumArcs(); id++ {
				a := qn.G.Arc(id)
				if inS[a.From] && !inS[a.To] {
					cut += a.Cap
				}
			}
			if mf.Value > cut+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Decomposition is lossless with respect to cost: the paths' cost plus the
// dropped cycles' (nonnegative) cost equals the flow cost, so the paths
// never cost more than the flow.
func TestQuickDecomposeCostNeverExceedsFlow(t *testing.T) {
	property := func(qn quickNet) bool {
		src := 0
		gg := qn.G.Clone()
		super := gg.AddNode()
		rng := rand.New(rand.NewSource(int64(qn.G.NumArcs())))
		sinks := map[graph.NodeID]float64{}
		for k := 0; k < 2; k++ {
			s := 1 + rng.Intn(qn.G.NumNodes()-1)
			if _, dup := sinks[s]; !dup {
				d := 0.3 + 2*rng.Float64()
				sinks[s] = d
				gg.AddArc(s, super, 0, d)
			}
		}
		var total float64
		for _, d := range sinks {
			total += d
		}
		res, err := MinCostFlow(gg, src, super, total)
		if err != nil {
			return true // infeasible instance, nothing to check
		}
		arcFlow := res.Arc[:qn.G.NumArcs()]
		paths, err := Decompose(qn.G, arcFlow, src, sinks)
		if err != nil {
			return false
		}
		var pathCost float64
		for _, pf := range paths {
			pathCost += pf.Amount * pf.Path.Cost(qn.G)
		}
		return pathCost <= Cost(qn.G, arcFlow)+1e-6*(1+pathCost)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
