package flow

import (
	"math"

	"jcr/internal/graph"
)

// MaxFlow computes a maximum flow from src to dst with the Edmonds-Karp
// algorithm (BFS augmenting paths). Arc costs are ignored. The returned
// Result's Cost field is still populated for convenience.
func MaxFlow(g *graph.Graph, src, dst graph.NodeID) *Result {
	if src == dst {
		return &Result{Arc: make([]float64, g.NumArcs())}
	}
	r := newResNet(g)
	queue := make([]int, 0, r.n)
	parent := make([]int, r.n)
	for {
		for v := range parent {
			parent[v] = -2 // unvisited
		}
		parent[src] = -1
		queue = queue[:0]
		queue = append(queue, src)
		for qi := 0; qi < len(queue) && parent[dst] == -2; qi++ {
			v := queue[qi]
			for a := r.head[v]; a >= 0; a = r.next[a] {
				if r.cap[a] <= eps {
					continue
				}
				if w := r.to[a]; parent[w] == -2 {
					parent[w] = a
					queue = append(queue, w)
				}
			}
		}
		if parent[dst] == -2 {
			break
		}
		bottleneck := math.Inf(1)
		for v := dst; v != src; {
			a := parent[v]
			if r.cap[a] < bottleneck {
				bottleneck = r.cap[a]
			}
			v = r.to[a^1]
		}
		if math.IsInf(bottleneck, 1) {
			// An entirely uncapacitated augmenting path means the max
			// flow is unbounded; report +Inf value with no arc flows.
			res := &Result{Arc: make([]float64, g.NumArcs())}
			res.Value = math.Inf(1)
			return res
		}
		for v := dst; v != src; {
			a := parent[v]
			r.cap[a] -= bottleneck
			r.cap[a^1] += bottleneck
			v = r.to[a^1]
		}
	}
	return r.extract(g, src)
}
