// Package flow implements single-commodity network-flow algorithms on the
// library's directed graphs: minimum-cost flow via successive shortest
// paths with Johnson potentials, Edmonds-Karp maximum flow, and the
// decomposition of arc flows into at most |E| simple paths used throughout
// the paper (Algorithm 2 line 2, Section 4.3.1).
package flow

import (
	"context"
	"errors"
	"fmt"
	"math"

	"jcr/internal/graph"
)

// ErrInsufficientCapacity reports that the requested flow value exceeds the
// network's capacity between the endpoints.
var ErrInsufficientCapacity = errors.New("flow: insufficient capacity")

const (
	// eps is the flow magnitude below which a value counts as zero.
	eps = 1e-9
	// distTol is the strict-improvement margin for Dijkstra labels; it
	// keeps float residue from re-relaxing settled nodes.
	distTol = 1e-12
	// arcEpsRel scales the per-arc zero threshold used by Decompose
	// with the total demand.
	arcEpsRel = 1e-12
)

// Result is a computed single-commodity flow.
type Result struct {
	// Arc[id] is the flow on arc id of the input graph.
	Arc []float64
	// Value is the total flow shipped from source to sink.
	Value float64
	// Cost is the total routing cost sum_e w_e * Arc[e].
	Cost float64
}

// residual network: arcs stored in pairs, forward 2k and backward 2k+1.
type resNet struct {
	n    int
	head []int // head[v]: first residual-arc index of v, -1 if none
	next []int // next[a]: next residual arc from the same tail
	to   []int
	cap  []float64
	cost []float64
	orig []graph.ArcID // orig[a]: the input arc this residual arc came from

	// Dijkstra scratch, reused across the successive-shortest-path
	// augmentations (one dijkstra call per augmentation adds up on dense
	// instances; reusing the labels and the heap keeps the inner loop
	// allocation-free).
	dist   []float64
	parent []int
	done   []bool
	heap   []hEnt
}

// hEnt is a binary-heap entry for Dijkstra: node v with tentative label d.
type hEnt struct {
	v int
	d float64
}

func newResNet(g *graph.Graph) *resNet {
	n := g.NumNodes()
	m := g.NumArcs()
	r := &resNet{
		n:    n,
		head: make([]int, n),
		next: make([]int, 0, 2*m),
		to:   make([]int, 0, 2*m),
		cap:  make([]float64, 0, 2*m),
		cost: make([]float64, 0, 2*m),
		orig: make([]graph.ArcID, 0, 2*m),
	}
	for v := range r.head {
		r.head[v] = -1
	}
	for id := 0; id < m; id++ {
		a := g.Arc(id)
		r.addPair(a.From, a.To, a.Cap, a.Cost, id)
	}
	return r
}

func (r *resNet) addPair(u, v int, capacity, cost float64, orig graph.ArcID) {
	r.to = append(r.to, v, u)
	r.cap = append(r.cap, capacity, 0)
	r.cost = append(r.cost, cost, -cost)
	r.orig = append(r.orig, orig, orig)
	f := len(r.to) - 2
	r.next = append(r.next, r.head[u], r.head[v])
	r.head[u] = f
	r.head[v] = f + 1
}

// heapPush inserts e into the scratch heap.
func (r *resNet) heapPush(e hEnt) {
	heap := append(r.heap, e)
	i := len(heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if heap[p].d <= heap[i].d {
			break
		}
		heap[p], heap[i] = heap[i], heap[p]
		i = p
	}
	r.heap = heap
}

// heapPop removes and returns the minimum entry of the scratch heap.
func (r *resNet) heapPop() hEnt {
	heap := r.heap
	e := heap[0]
	last := len(heap) - 1
	heap[0] = heap[last]
	heap = heap[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		s := i
		if l < last && heap[l].d < heap[s].d {
			s = l
		}
		if rr < last && heap[rr].d < heap[s].d {
			s = rr
		}
		if s == i {
			break
		}
		heap[s], heap[i] = heap[i], heap[s]
		i = s
	}
	r.heap = heap
	return e
}

// dijkstra computes shortest reduced-cost distances from src; parent[v] is
// the residual arc entering v on the shortest path. The returned slices are
// the receiver's scratch, valid until the next call.
func (r *resNet) dijkstra(src int, pot []float64) (dist []float64, parent []int) {
	if r.dist == nil {
		r.dist = make([]float64, r.n)
		r.parent = make([]int, r.n)
		r.done = make([]bool, r.n)
	}
	dist, parent, done := r.dist, r.parent, r.done
	for v := range dist {
		dist[v] = math.Inf(1)
		parent[v] = -1
		done[v] = false
	}
	dist[src] = 0
	r.heap = r.heap[:0]
	r.heapPush(hEnt{src, 0})
	for len(r.heap) > 0 {
		e := r.heapPop()
		if done[e.v] || e.d > dist[e.v] {
			continue
		}
		done[e.v] = true
		for a := r.head[e.v]; a >= 0; a = r.next[a] {
			if r.cap[a] <= eps {
				continue
			}
			w := r.to[a]
			rc := r.cost[a] + pot[e.v] - pot[w]
			if rc < 0 {
				// Clamp tiny negatives from float accumulation;
				// potentials keep true reduced costs nonnegative.
				rc = 0
			}
			if nd := e.d + rc; nd < dist[w]-distTol {
				dist[w] = nd
				parent[w] = a
				r.heapPush(hEnt{w, nd})
			}
		}
	}
	return dist, parent
}

// MinCostFlow ships `value` units from src to dst at minimum cost using
// successive shortest paths. It returns ErrInsufficientCapacity (with the
// maximal shippable partial flow discarded) if the network cannot carry the
// requested value. Arc costs must be nonnegative, which graph.AddArc
// enforces. An infinite value ships as much as possible at minimum cost
// (min-cost max-flow).
func MinCostFlow(g *graph.Graph, src, dst graph.NodeID, value float64) (*Result, error) {
	return MinCostFlowContext(nil, g, src, dst, value)
}

// MinCostFlowContext is MinCostFlow with cooperative cancellation: the
// successive-shortest-path loop polls ctx before every augmentation and
// aborts with an error wrapping ctx.Err() once the context is done, so a
// caller-imposed deadline stops the solver between augmentations instead
// of running the instance to completion. A nil ctx means no cancellation
// (identical to MinCostFlow).
func MinCostFlowContext(ctx context.Context, g *graph.Graph, src, dst graph.NodeID, value float64) (*Result, error) {
	if src == dst {
		return &Result{Arc: make([]float64, g.NumArcs())}, nil
	}
	r := newResNet(g)
	pot := make([]float64, r.n)
	remaining := value
	// Relative tolerance: float dust at ~1e6 request-rate scale must not
	// read as unroutable demand.
	tol := eps
	if !math.IsInf(value, 1) {
		tol = eps * (1 + value)
	}
	for remaining > tol {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("flow: canceled with %.6g units unshipped: %w", remaining, err)
			}
		}
		dist, parent := r.dijkstra(src, pot)
		if math.IsInf(dist[dst], 1) {
			if math.IsInf(value, 1) {
				break // max flow reached
			}
			return nil, fmt.Errorf("%w: %.6g units unroutable from %d to %d",
				ErrInsufficientCapacity, remaining, src, dst)
		}
		for v := 0; v < r.n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the shortest path.
		bottleneck := remaining
		for v := dst; v != src; {
			a := parent[v]
			if r.cap[a] < bottleneck {
				bottleneck = r.cap[a]
			}
			v = r.to[a^1]
		}
		if math.IsInf(bottleneck, 1) {
			// Entire path uncapacitated; ship everything left.
			bottleneck = remaining
		}
		for v := dst; v != src; {
			a := parent[v]
			r.cap[a] -= bottleneck
			r.cap[a^1] += bottleneck
			v = r.to[a^1]
		}
		remaining -= bottleneck
	}
	return r.extract(g, src), nil
}

func (r *resNet) extract(g *graph.Graph, src graph.NodeID) *Result {
	res := &Result{Arc: make([]float64, g.NumArcs())}
	for k := 0; k < len(r.to); k += 2 {
		// Flow on the original arc equals the residual capacity of the
		// backward arc.
		f := r.cap[k+1]
		if f < eps {
			continue
		}
		id := r.orig[k]
		res.Arc[id] += f
		res.Cost += f * g.Arc(id).Cost
	}
	res.Value = NetOutflow(g, res.Arc, src)
	return res
}

// NetOutflow computes the net outflow (out minus in) of node v under the
// arc flow.
func NetOutflow(g *graph.Graph, arcFlow []float64, v graph.NodeID) float64 {
	var net float64
	for _, id := range g.Out(v) {
		net += arcFlow[id]
	}
	for _, id := range g.In(v) {
		net -= arcFlow[id]
	}
	return net
}

// Cost computes the total routing cost of an arc flow.
func Cost(g *graph.Graph, arcFlow []float64) float64 {
	var c float64
	for id, f := range arcFlow {
		c += f * g.Arc(id).Cost
	}
	return c
}
