// External test package: internal/check imports flow, so these
// check-based assertions live outside the flow package to avoid an import
// cycle.
package flow_test

import (
	"testing"

	"jcr/internal/check"
	"jcr/internal/flow"
	"jcr/internal/graph"
)

func TestMinCostFlowSatisfiesInvariants(t *testing.T) {
	// 0->1->3 cost 2, 0->2->3 cost 10; both cap 4; demand 6.
	g := graph.New(4)
	g.AddArc(0, 1, 1, 4)
	g.AddArc(1, 3, 1, 4)
	g.AddArc(0, 2, 5, 4)
	g.AddArc(2, 3, 5, 4)
	r, err := flow.MinCostFlow(g, 0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ArcFlow(g, r.Arc, 0, map[graph.NodeID]float64{3: 6}, false); err != nil {
		t.Errorf("min-cost flow violates Eq. 1b-1d: %v", err)
	}
}

func TestDecomposeSatisfiesInvariants(t *testing.T) {
	// Decomposed path flows must re-aggregate to a conserved arc flow.
	g := graph.New(4)
	a := []graph.ArcID{
		g.AddArc(0, 1, 1, 4),
		g.AddArc(1, 3, 1, 4),
		g.AddArc(0, 2, 5, 4),
		g.AddArc(2, 3, 5, 4),
	}
	r, err := flow.MinCostFlow(g, 0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	pfs, err := flow.Decompose(g, r.Arc, 0, map[graph.NodeID]float64{3: 6})
	if err != nil {
		t.Fatal(err)
	}
	agg := make([]float64, g.NumArcs())
	for _, pf := range pfs {
		for _, id := range pf.Path.Arcs {
			agg[id] += pf.Amount
		}
	}
	_ = a
	if err := check.ArcFlow(g, agg, 0, map[graph.NodeID]float64{3: 6}, false); err != nil {
		t.Errorf("decomposed flow violates Eq. 1b-1d: %v", err)
	}
}
