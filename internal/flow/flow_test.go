package flow

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/lp"
)

func TestMinCostFlowSimple(t *testing.T) {
	// Two parallel routes: cheap with cap 5, expensive with cap 10.
	g := graph.New(2)
	g.AddArc(0, 1, 1, 5)
	g.AddArc(0, 1, 3, 10)

	r, err := MinCostFlow(g, 0, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-8) > 1e-9 {
		t.Errorf("value = %v, want 8", r.Value)
	}
	if math.Abs(r.Cost-(5*1+3*3)) > 1e-9 {
		t.Errorf("cost = %v, want 14", r.Cost)
	}
}

func TestMinCostFlowPrefersCheapPath(t *testing.T) {
	// 0->1->3 cost 2, 0->2->3 cost 10; both cap 4; demand 6.
	g := graph.New(4)
	g.AddArc(0, 1, 1, 4)
	g.AddArc(1, 3, 1, 4)
	g.AddArc(0, 2, 5, 4)
	g.AddArc(2, 3, 5, 4)
	r, err := MinCostFlow(g, 0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-(4*2+2*10)) > 1e-9 {
		t.Errorf("cost = %v, want 28", r.Cost)
	}
}

func TestMinCostFlowInsufficient(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1, 1, 3)
	if _, err := MinCostFlow(g, 0, 1, 5); !errors.Is(err, ErrInsufficientCapacity) {
		t.Errorf("err = %v, want ErrInsufficientCapacity", err)
	}
}

func TestMinCostFlowUnlimitedArcs(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1, graph.Unlimited)
	g.AddArc(1, 2, 1, graph.Unlimited)
	r, err := MinCostFlow(g, 0, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-1000) > 1e-6 || math.Abs(r.Cost-2000) > 1e-6 {
		t.Errorf("value/cost = %v/%v, want 1000/2000", r.Value, r.Cost)
	}
}

func TestMinCostMaxFlow(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1, 7)
	g.AddArc(1, 2, 2, 4)
	r, err := MinCostFlow(g, 0, 2, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-4) > 1e-9 {
		t.Errorf("max-flow value = %v, want 4", r.Value)
	}
}

func TestMinCostFlowSelfLoopTrivial(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1, 1, 1)
	r, err := MinCostFlow(g, 0, 0, 5)
	if err != nil || r.Value != 0 {
		t.Errorf("src==dst should yield zero flow, got %v, %v", r, err)
	}
}

func TestMaxFlowClassic(t *testing.T) {
	// CLRS-style example with known max flow 23.
	g := graph.New(6)
	g.AddArc(0, 1, 0, 16)
	g.AddArc(0, 2, 0, 13)
	g.AddArc(1, 2, 0, 10)
	g.AddArc(2, 1, 0, 4)
	g.AddArc(1, 3, 0, 12)
	g.AddArc(3, 2, 0, 9)
	g.AddArc(2, 4, 0, 14)
	g.AddArc(4, 3, 0, 7)
	g.AddArc(3, 5, 0, 20)
	g.AddArc(4, 5, 0, 4)
	r := MaxFlow(g, 0, 5)
	if math.Abs(r.Value-23) > 1e-9 {
		t.Errorf("max flow = %v, want 23", r.Value)
	}
	// Conservation at interior nodes.
	for v := 1; v <= 4; v++ {
		if net := NetOutflow(g, r.Arc, v); math.Abs(net) > 1e-9 {
			t.Errorf("node %d net outflow = %v, want 0", v, net)
		}
	}
}

func TestMaxFlowUnbounded(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1, 0, graph.Unlimited)
	r := MaxFlow(g, 0, 1)
	if !math.IsInf(r.Value, 1) {
		t.Errorf("value = %v, want +Inf", r.Value)
	}
}

// lpMinCostFlow solves the same min-cost flow with the LP package, as an
// independent oracle.
func lpMinCostFlow(g *graph.Graph, src, dst graph.NodeID, value float64) (float64, error) {
	m := g.NumArcs()
	p := lp.NewProblem(m)
	for id := 0; id < m; id++ {
		a := g.Arc(id)
		p.SetObjectiveCoeff(id, a.Cost)
		if !math.IsInf(a.Cap, 1) {
			p.SetBounds(id, 0, a.Cap)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		var idx []int
		var val []float64
		for _, id := range g.Out(v) {
			idx = append(idx, id)
			val = append(val, 1)
		}
		for _, id := range g.In(v) {
			idx = append(idx, id)
			val = append(val, -1)
		}
		want := 0.0
		switch v {
		case src:
			want = value
		case dst:
			want = -value
		}
		p.AddConstraint(idx, val, lp.EQ, want)
	}
	s, err := p.Solve()
	if err != nil {
		return 0, err
	}
	return s.Objective, nil
}

func randomFlowGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	// Spine to keep things connected from 0 to n-1.
	for v := 0; v+1 < n; v++ {
		g.AddArc(v, v+1, float64(1+rng.Intn(9)), float64(1+rng.Intn(10)))
	}
	extra := n + rng.Intn(2*n)
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.AddArc(u, v, float64(1+rng.Intn(9)), float64(1+rng.Intn(10)))
	}
	return g
}

func TestMinCostFlowMatchesLPRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := randomFlowGraph(rng, n)
		src, dst := 0, n-1
		mf := MaxFlow(g, src, dst)
		if mf.Value < 1 {
			continue
		}
		value := mf.Value * (0.3 + 0.6*rng.Float64())
		got, err := MinCostFlow(g, src, dst, value)
		if err != nil {
			t.Fatalf("trial %d: MinCostFlow: %v", trial, err)
		}
		want, err := lpMinCostFlow(g, src, dst, value)
		if err != nil {
			t.Fatalf("trial %d: LP oracle: %v", trial, err)
		}
		if math.Abs(got.Cost-want) > 1e-5*(1+want) {
			t.Fatalf("trial %d: SSP cost %v, LP cost %v", trial, got.Cost, want)
		}
		// Capacity obedience.
		for id, f := range got.Arc {
			if f > g.Arc(id).Cap+1e-7 {
				t.Fatalf("trial %d: arc %d overloaded: %v > %v", trial, id, f, g.Arc(id).Cap)
			}
		}
	}
}

func TestDecomposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		g := randomFlowGraph(rng, n)
		// Multi-sink flow: super-sink n attached to 2 random sinks.
		sinks := map[graph.NodeID]float64{}
		gg := g.Clone()
		super := gg.AddNode()
		for k := 0; k < 2; k++ {
			s := 1 + rng.Intn(n-1)
			if _, dup := sinks[s]; dup {
				continue
			}
			d := float64(1 + rng.Intn(4))
			sinks[s] = d
			gg.AddArc(s, super, 0, d)
		}
		var total float64
		for _, d := range sinks {
			total += d
		}
		res, err := MinCostFlow(gg, 0, super, total)
		if err != nil {
			continue // not enough capacity; skip
		}
		// Project back to g's arcs (g's arc IDs coincide with gg's).
		arcFlow := res.Arc[:g.NumArcs()]
		paths, err := Decompose(g, arcFlow, 0, sinks)
		if err != nil {
			t.Fatalf("trial %d: Decompose: %v", trial, err)
		}
		// Each sink's demand is met by paths ending there.
		got := map[graph.NodeID]float64{}
		for _, pf := range paths {
			if pf.Path.Len() > 0 {
				if err := pf.Path.Validate(g, 0, pf.Sink); err != nil {
					t.Fatalf("trial %d: bad path: %v", trial, err)
				}
			}
			got[pf.Sink] += pf.Amount
		}
		for s, d := range sinks {
			if math.Abs(got[s]-d) > 1e-7 {
				t.Fatalf("trial %d: sink %d got %v, want %v", trial, s, got[s], d)
			}
		}
		// Recomposed flow never exceeds the original on any arc
		// (cycles may have been dropped).
		rec := Recompose(g, paths)
		for id := range rec {
			if rec[id] > arcFlow[id]+1e-7 {
				t.Fatalf("trial %d: recomposed arc %d = %v > original %v", trial, id, rec[id], arcFlow[id])
			}
		}
		// Path count bound: |E| + #sinks.
		if len(paths) > g.NumArcs()+len(sinks) {
			t.Fatalf("trial %d: %d paths exceeds bound %d", trial, len(paths), g.NumArcs()+len(sinks))
		}
	}
}

func TestDecomposeRejectsBadFlow(t *testing.T) {
	g := graph.New(3)
	g.AddArc(0, 1, 1, 5)
	// Flow claims 2 units reach node 2, but no arcs go there.
	_, err := Decompose(g, []float64{2}, 0, map[graph.NodeID]float64{2: 2})
	if err == nil {
		t.Error("expected error for non-conserving flow")
	}
	// Wrong arc-flow length.
	_, err = Decompose(g, []float64{1, 2}, 0, map[graph.NodeID]float64{1: 1})
	if err == nil {
		t.Error("expected error for wrong arc slice length")
	}
}

func TestDecomposeDropsCycle(t *testing.T) {
	// Flow: 0->1 (1 unit) plus a detached 2-cycle 1->2->1 of 1 unit.
	g := graph.New(3)
	a01 := g.AddArc(0, 1, 1, 5)
	a12 := g.AddArc(1, 2, 1, 5)
	a21 := g.AddArc(2, 1, 1, 5)
	arcFlow := make([]float64, 3)
	arcFlow[a01] = 1
	arcFlow[a12] = 1
	arcFlow[a21] = 1
	paths, err := Decompose(g, arcFlow, 0, map[graph.NodeID]float64{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Amount != 1 || paths[0].Sink != 1 {
		t.Fatalf("paths = %+v, want single 0->1 path of 1 unit", paths)
	}
	if paths[0].Path.Len() != 1 {
		t.Errorf("path should not include the cycle, got %d arcs", paths[0].Path.Len())
	}
}

func TestCostHelper(t *testing.T) {
	g := graph.New(2)
	g.AddArc(0, 1, 3, 5)
	g.AddArc(0, 1, 7, 5)
	if got := Cost(g, []float64{2, 1}); got != 13 {
		t.Errorf("Cost = %v, want 13", got)
	}
}
