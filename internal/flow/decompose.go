package flow

import (
	"fmt"
	"sort"

	"jcr/internal/graph"
)

// PathFlow is one path of a flow decomposition together with the amount of
// flow it carries and the sink it serves.
type PathFlow struct {
	Path   graph.Path
	Amount float64
	Sink   graph.NodeID
}

// Decompose splits a single-commodity arc flow rooted at src into simple
// paths, each ending at a sink with positive demand. demand maps sink nodes
// to the amount of flow terminating there; the arc flow must satisfy
// conservation with net outflow sum(demand) at src and net inflow demand[t]
// at each sink t (the flow-decomposition precondition). Cycles in the flow
// are canceled and dropped, which never increases cost since arc costs are
// nonnegative. The number of returned paths is at most |E| plus the number
// of sinks, matching the bound used in the proof of Theorem 4.7.
func Decompose(g *graph.Graph, arcFlow []float64, src graph.NodeID, demand map[graph.NodeID]float64) ([]PathFlow, error) {
	if len(arcFlow) != g.NumArcs() {
		return nil, fmt.Errorf("flow: arc flow has %d entries for %d arcs", len(arcFlow), g.NumArcs())
	}
	res := append([]float64(nil), arcFlow...)
	remaining := make(map[graph.NodeID]float64, len(demand))
	var total float64
	// Sum demand in sorted sink order: total feeds the tolerances below,
	// and map iteration order would otherwise leak into their last bits.
	sinks := make([]graph.NodeID, 0, len(demand))
	for t := range demand {
		sinks = append(sinks, t)
	}
	sort.Ints(sinks)
	for _, t := range sinks {
		if d := demand[t]; d > eps {
			remaining[t] = d
			total += d
		}
	}
	// Tolerances scale with the demand magnitude so that float residue
	// on large instances (rates of ~1e6 requests/hour) does not read as
	// missing flow.
	tol := eps * (1 + total)
	arcTol := arcEpsRel * (1 + total)
	var out []PathFlow
	// visitStamp marks nodes on the current walk for cycle detection.
	stamp := make([]int, g.NumNodes())
	walkID := 0

	for total > tol {
		walkID++
		// Walk from src along positive-flow arcs until reaching a sink
		// with remaining demand. On revisiting a node, cancel the cycle.
		var arcs []graph.ArcID
		v := src
		stamp[v] = walkID
		for {
			if rem, isSink := remaining[v]; isSink && rem > tol && v != src {
				break
			}
			// Follow the largest-residual out-arc. LP-produced flows carry
			// round-off noise slightly above arcTol on arcs the true
			// solution leaves empty; the first-positive-arc walk could
			// follow such an arc into a dead end and wrongly report the
			// whole flow non-conservative. Real flow always dominates
			// noise, so the max-residual arc is safe to follow.
			var next graph.ArcID = -1
			for _, id := range g.Out(v) {
				if res[id] > arcTol && (next < 0 || res[id] > res[next]) {
					next = id
				}
			}
			if next < 0 {
				if rem, isSink := remaining[v]; isSink && rem > tol {
					break // src itself is a sink (degenerate but legal)
				}
				return nil, fmt.Errorf("flow: decomposition stuck at node %d with %.6g demand left (flow does not satisfy conservation)", v, total)
			}
			w := g.Arc(next).To
			if stamp[w] == walkID {
				// Found a cycle; cancel it and restart the walk.
				cycleStart := -1
				for k, id := range arcs {
					if g.Arc(id).From == w {
						cycleStart = k
						break
					}
				}
				var cycle []graph.ArcID
				if cycleStart >= 0 {
					cycle = append(cycle, arcs[cycleStart:]...)
				}
				cycle = append(cycle, next)
				minf := res[cycle[0]]
				for _, id := range cycle[1:] {
					if res[id] < minf {
						minf = res[id]
					}
				}
				for _, id := range cycle {
					res[id] -= minf
				}
				// Restart the walk from scratch.
				arcs = nil
				v = src
				walkID++
				stamp[v] = walkID
				continue
			}
			arcs = append(arcs, next)
			v = w
			stamp[v] = walkID
		}
		// v is a sink with remaining demand.
		amount := remaining[v]
		for _, id := range arcs {
			if res[id] < amount {
				amount = res[id]
			}
		}
		if amount <= arcTol {
			return nil, fmt.Errorf("flow: zero-width path extracted at sink %d", v)
		}
		for _, id := range arcs {
			res[id] -= amount
		}
		remaining[v] -= amount
		total -= amount
		out = append(out, PathFlow{
			Path:   graph.Path{Arcs: arcs},
			Amount: amount,
			Sink:   v,
		})
	}
	return out, nil
}

// Recompose converts path flows back to an arc flow, the inverse of
// Decompose up to dropped cycles.
func Recompose(g *graph.Graph, paths []PathFlow) []float64 {
	arc := make([]float64, g.NumArcs())
	for _, pf := range paths {
		for _, id := range pf.Path.Arcs {
			arc[id] += pf.Amount
		}
	}
	return arc
}
