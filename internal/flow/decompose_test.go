package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jcr/internal/graph"
)

// TestDecomposeCancelsResidualCycleOnPath covers the cycle-cancellation
// branch where the walk actually enters the cycle: the detour 1->2->1
// carries more residual than the direct arc to the sink, so the
// max-residual walk takes it, revisits 1, and must cancel the cycle
// before it can reach the sink.
func TestDecomposeCancelsResidualCycleOnPath(t *testing.T) {
	g := graph.New(4)
	a01 := g.AddArc(0, 1, 1, 5)
	a12 := g.AddArc(1, 2, 1, 5) // largest residual at 1: walk takes the detour
	a21 := g.AddArc(2, 1, 1, 5)
	a13 := g.AddArc(1, 3, 1, 5)
	arcFlow := make([]float64, 4)
	arcFlow[a01] = 2
	arcFlow[a12] = 3
	arcFlow[a21] = 3
	arcFlow[a13] = 2
	paths, err := Decompose(g, arcFlow, 0, map[graph.NodeID]float64{3: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Sink != 3 || math.Abs(paths[0].Amount-2) > 1e-9 {
		t.Fatalf("paths = %+v, want single 0->1->3 path of 2 units", paths)
	}
	for _, id := range paths[0].Path.Arcs {
		if id == a12 || id == a21 {
			t.Errorf("path uses canceled cycle arc %d", id)
		}
	}
}

// TestDecomposeZeroFlowArcsAfterCancellation checks that arcs whose flow
// is entirely canceled cycle mass end up carrying nothing: the recomposed
// flow is zero there and exactly matches the input on the path arcs.
func TestDecomposeZeroFlowArcsAfterCancellation(t *testing.T) {
	// 0->1->3 carries the demand; 1->2->1 is a 1-unit residual cycle.
	g := graph.New(4)
	a01 := g.AddArc(0, 1, 1, 5)
	a12 := g.AddArc(1, 2, 1, 5)
	a21 := g.AddArc(2, 1, 1, 5)
	a13 := g.AddArc(1, 3, 1, 5)
	arcFlow := make([]float64, 4)
	arcFlow[a01] = 1
	arcFlow[a12] = 1
	arcFlow[a21] = 1
	arcFlow[a13] = 1
	paths, err := Decompose(g, arcFlow, 0, map[graph.NodeID]float64{3: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recompose(g, paths)
	for _, id := range []graph.ArcID{a12, a21} {
		if rec[id] != 0 {
			t.Errorf("cycle arc %d recomposed to %v, want 0", id, rec[id])
		}
	}
	for _, id := range []graph.ArcID{a01, a13} {
		if math.Abs(rec[id]-arcFlow[id]) > 1e-9 {
			t.Errorf("path arc %d recomposed to %v, want %v", id, rec[id], arcFlow[id])
		}
	}
}

// TestDecomposeIgnoresLPNoiseArcs is the regression for the multicommodity
// LP call sites: simplex solutions carry round-off residue slightly above
// the walk tolerance on arcs the true flow leaves empty. A
// first-positive-arc walk follows the noise arc 0->4 into a dead end and
// wrongly reports the (conservative) flow stuck; the max-residual walk
// must route the full demand along the real path.
func TestDecomposeIgnoresLPNoiseArcs(t *testing.T) {
	g := graph.New(5)
	n04 := g.AddArc(0, 4, 1, 5) // dead-end noise arc, deliberately first
	a01 := g.AddArc(0, 1, 1, 25)
	a13 := g.AddArc(1, 3, 1, 25)
	arcFlow := make([]float64, 3)
	arcFlow[n04] = 1e-9 // above arcTol, below any real flow
	arcFlow[a01] = 20
	arcFlow[a13] = 20
	paths, err := Decompose(g, arcFlow, 0, map[graph.NodeID]float64{3: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Sink != 3 || math.Abs(paths[0].Amount-20) > 1e-6 {
		t.Fatalf("paths = %+v, want single 0->1->3 path of 20 units", paths)
	}
	for _, id := range paths[0].Path.Arcs {
		if id == n04 {
			t.Errorf("path uses noise arc %d", id)
		}
	}
}

// TestQuickDecomposeConservesFlowUnderLinkRemovals is the fault-scenario
// property: degrade a random network by removing a random subset of links,
// route a min-cost flow on the survivor, and require the decomposition to
// reproduce the arc flow exactly. Min-cost flows on positive-cost arcs are
// cycle-free, so Recompose(Decompose(f)) must equal f per arc, and each
// sink's paths must add up to its demand.
func TestQuickDecomposeConservesFlowUnderLinkRemovals(t *testing.T) {
	property := func(qn quickNet, removalSeed int64) bool {
		rng := rand.New(rand.NewSource(removalSeed))
		// Injected link removals: rebuild the graph without ~30% of arcs.
		g := graph.New(qn.G.NumNodes())
		for id := 0; id < qn.G.NumArcs(); id++ {
			if rng.Float64() < 0.3 {
				continue
			}
			a := qn.G.Arc(id)
			g.AddArc(a.From, a.To, a.Cost, a.Cap)
		}
		src := 0
		gg := g.Clone()
		super := gg.AddNode()
		sinks := map[graph.NodeID]float64{}
		for k := 0; k < 2; k++ {
			s := 1 + rng.Intn(g.NumNodes()-1)
			if _, dup := sinks[s]; !dup {
				d := 0.3 + 2*rng.Float64()
				sinks[s] = d
				gg.AddArc(s, super, 0, d)
			}
		}
		var total float64
		for _, d := range sinks {
			total += d
		}
		res, err := MinCostFlow(gg, src, super, total)
		if err != nil {
			return true // removals disconnected the sinks; nothing to check
		}
		arcFlow := res.Arc[:g.NumArcs()]
		paths, err := Decompose(g, arcFlow, src, sinks)
		if err != nil {
			return false
		}
		served := map[graph.NodeID]float64{}
		for _, pf := range paths {
			served[pf.Sink] += pf.Amount
		}
		for s, d := range sinks {
			if math.Abs(served[s]-d) > 1e-6*(1+d) {
				return false
			}
		}
		rec := Recompose(g, paths)
		for id := range rec {
			if math.Abs(rec[id]-arcFlow[id]) > 1e-6*(1+arcFlow[id]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}
