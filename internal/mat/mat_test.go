package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
	a := []float64{4, 2, 2, 3}
	l, err := Cholesky(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, math.Sqrt(2)}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Errorf("L[%d] = %v, want %v", i, l[i], want[i])
		}
	}
	if det := LogDetFromCholesky(l, 2); math.Abs(det-math.Log(8)) > 1e-12 {
		t.Errorf("logdet = %v, want log(8)", det)
	}
}

func TestCholeskyRejects(t *testing.T) {
	if _, err := Cholesky([]float64{-1}, 1); err == nil {
		t.Error("negative 1x1 accepted")
	}
	if _, err := Cholesky([]float64{1, 2, 2, 1}, 2); err == nil {
		t.Error("indefinite matrix accepted")
	}
	if _, err := Cholesky([]float64{1, 2}, 2); err == nil {
		t.Error("wrong size accepted")
	}
}

func TestCholeskySolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		// Random SPD: A = B B' + n I.
		b := make([]float64, n*n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += b[i*n+k] * b[j*n+k]
				}
				a[i*n+j] = s
			}
			a[i*n+i] += float64(n)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rhs[i] += a[i*n+j] * xTrue[j]
			}
		}
		l, err := Cholesky(a, n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		x := CholeskySolve(l, n, rhs)
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}
