// Package mat provides the small dense linear algebra needed by the
// Gaussian-process regression substrate: symmetric positive-definite
// Cholesky factorization and triangular solves.
package mat

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite reports a failed Cholesky factorization.
var ErrNotPositiveDefinite = errors.New("mat: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L L' = A for a symmetric
// positive-definite matrix A given in row-major order (n x n). A is not
// modified.
func Cholesky(a []float64, n int) ([]float64, error) {
	if len(a) != n*n {
		return nil, errors.New("mat: dimension mismatch")
	}
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotPositiveDefinite
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveLower solves L y = b for lower-triangular L (forward substitution).
func SolveLower(l []float64, n int, b []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * y[k]
		}
		y[i] = sum / l[i*n+i]
	}
	return y
}

// SolveUpperT solves L' x = y for the transpose of lower-triangular L
// (backward substitution).
func SolveUpperT(l []float64, n int, y []float64) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// CholeskySolve solves A x = b given A's Cholesky factor L.
func CholeskySolve(l []float64, n int, b []float64) []float64 {
	return SolveUpperT(l, n, SolveLower(l, n, b))
}

// LogDetFromCholesky returns log det A = 2 * sum_i log L_ii.
func LogDetFromCholesky(l []float64, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += math.Log(l[i*n+i])
	}
	return 2 * s
}
