package faults

import (
	"math"
	"reflect"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// line4 builds the 4-node path 0-1-2-3 with per-direction asymmetric
// capacities (as AugmentFeasibility leaves them) and a spec pair sharing
// the graph, mirroring the simulator's MakeRun convention.
func line4(t *testing.T) (*placement.Spec, *placement.Spec) {
	t.Helper()
	g := graph.New(4)
	uv, _ := g.AddEdge(0, 1, 1, 10)
	g.AddEdge(1, 2, 2, 10)
	g.AddEdge(2, 3, 3, 10)
	g.SetArcCap(uv, 25) // asymmetric: forward 25, reverse 10
	mk := func() *placement.Spec {
		return &placement.Spec{
			G:        g,
			NumItems: 2,
			CacheCap: []float64{0, 1, 1, 0},
			Pinned:   []graph.NodeID{0},
			Rates:    [][]float64{{0, 0, 2, 4}, {0, 0, 1, 1}},
		}
	}
	dec, tr := mk(), mk()
	tr.Rates = [][]float64{{0, 0, 3, 5}, {0, 0, 1, 2}}
	return dec, tr
}

func TestFaultLinksPairing(t *testing.T) {
	dec, _ := line4(t)
	links, err := Links(dec.G)
	if err != nil {
		t.Fatal(err)
	}
	want := []Link{
		{U: 0, V: 1, Fwd: 0, Rev: 1},
		{U: 1, V: 2, Fwd: 2, Rev: 3},
		{U: 2, V: 3, Fwd: 4, Rev: 5},
	}
	if !reflect.DeepEqual(links, want) {
		t.Errorf("Links = %+v, want %+v", links, want)
	}

	odd := graph.New(2)
	odd.AddArc(0, 1, 1, 1)
	if _, err := Links(odd); err == nil {
		t.Error("odd arc count accepted")
	}

	unpaired := graph.New(3)
	unpaired.AddArc(0, 1, 1, 1)
	unpaired.AddArc(2, 0, 1, 1) // not the reverse of arc 0
	if _, err := Links(unpaired); err == nil {
		t.Error("non-reverse arc pair accepted")
	}
}

func TestFaultApplyFaultFreeIdentity(t *testing.T) {
	dec, tr := line4(t)
	sc := &Scenario{Name: "later", Events: []Event{{Kind: LinkDown, Start: 5, Duration: 2, Link: 0}}}
	d2, t2, cond, err := sc.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != dec || t2 != tr {
		t.Error("fault-free hour rewrote the specs (pointers differ)")
	}
	if cond.Faulty() {
		t.Errorf("fault-free condition reports faults: %+v", cond)
	}
	// A nil scenario behaves the same.
	var nilSc *Scenario
	if d3, _, _, err := nilSc.Apply(0, dec, tr); err != nil || d3 != dec {
		t.Errorf("nil scenario not an identity: %v", err)
	}
}

func TestFaultApplyLinkDown(t *testing.T) {
	dec, tr := line4(t)
	sc := &Scenario{Events: []Event{{Kind: LinkDown, Start: 0, Duration: 1, Link: 1}}}
	d2, t2, cond, err := sc.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d2.G != t2.G {
		t.Error("degraded specs do not share one graph")
	}
	if got := d2.G.NumArcs(); got != 4 {
		t.Errorf("degraded graph has %d arcs, want 4 (one link removed)", got)
	}
	if !reflect.DeepEqual(cond.LinksDown, []int{1}) {
		t.Errorf("LinksDown = %v, want [1]", cond.LinksDown)
	}
	// Link 1-2 gone: nodes {0,1} and {2,3} are disconnected.
	dist := graph.AllPairs(d2.G)
	if !math.IsInf(dist[0][3], 1) {
		t.Errorf("dist 0->3 = %v on a cut network, want +Inf", dist[0][3])
	}
	// Surviving links keep their per-direction asymmetric capacities.
	links, err := Links(d2.G)
	if err != nil {
		t.Fatalf("degraded graph lost the pairing convention: %v", err)
	}
	if f := d2.G.Arc(links[0].Fwd); f.Cap != 25 || f.Cost != 1 {
		t.Errorf("surviving forward arc = %+v, want cap 25 cost 1", f)
	}
	if r := d2.G.Arc(links[0].Rev); r.Cap != 10 {
		t.Errorf("surviving reverse arc cap = %v, want 10", r.Cap)
	}
	// Inputs untouched.
	if dec.G.NumArcs() != 6 {
		t.Error("Apply mutated the input graph")
	}
}

func TestFaultApplyDegradeAndComposition(t *testing.T) {
	dec, tr := line4(t)
	sc := &Scenario{Events: []Event{
		{Kind: LinkDegrade, Start: 0, Duration: 1, Link: 0, Factor: 0.5},
		{Kind: LinkDegrade, Start: 0, Duration: 1, Link: 0, Factor: 0.5}, // composes to 0.25
	}}
	d2, _, cond, err := sc.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cond.LinksDegraded, []int{0}) {
		t.Errorf("LinksDegraded = %v, want [0]", cond.LinksDegraded)
	}
	links, _ := Links(d2.G)
	if f := d2.G.Arc(links[0].Fwd); f.Cap != 25*0.25 {
		t.Errorf("degraded forward cap = %v, want %v", f.Cap, 25*0.25)
	}
	if r := d2.G.Arc(links[0].Rev); r.Cap != 10*0.25 {
		t.Errorf("degraded reverse cap = %v, want %v", r.Cap, 10*0.25)
	}
	// Invalid factors are rejected.
	for _, f := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		bad := &Scenario{Events: []Event{{Kind: LinkDegrade, Start: 0, Duration: 1, Link: 0, Factor: f}}}
		if _, _, _, err := bad.Apply(0, dec, tr); err == nil {
			t.Errorf("degrade factor %v accepted", f)
		}
	}
}

func TestFaultApplyCacheDown(t *testing.T) {
	dec, tr := line4(t)
	sc := CacheFailure(2, 0, 3)
	d2, t2, cond, err := sc.Apply(1, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cond.CachesDown, []graph.NodeID{2}) {
		t.Errorf("CachesDown = %v, want [2]", cond.CachesDown)
	}
	if d2.CacheCap[2] != 0 || t2.CacheCap[2] != 0 {
		t.Errorf("failed cache keeps capacity: dec %v truth %v", d2.CacheCap[2], t2.CacheCap[2])
	}
	if &d2.CacheCap[0] != &t2.CacheCap[0] {
		t.Error("degraded specs do not share one CacheCap slice")
	}
	if dec.CacheCap[2] != 1 {
		t.Error("Apply mutated the input CacheCap")
	}
	// Content loss: a placement carrying the failed cache's content is
	// evicted down to the degraded capacities.
	pl := dec.NewPlacement()
	pl.Stores[2][0] = true
	if n := d2.EvictToFit(pl); n != 1 || pl.Stores[2][0] {
		t.Errorf("EvictToFit on degraded spec evicted %d, stores[2][0]=%v", n, pl.Stores[2][0])
	}
	// The pinned origin cannot fail.
	if _, _, _, err := CacheFailure(0, 0, 1).Apply(0, dec, tr); err == nil {
		t.Error("pinned-node failure accepted")
	}
}

func TestFaultApplySurge(t *testing.T) {
	dec, tr := line4(t)
	sc := Merge("double", Surge(0, 2, 0, 1), Surge(-1, 3, 0, 1))
	d2, t2, cond, err := sc.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !cond.Surged {
		t.Error("condition does not report the surge")
	}
	// Item 0: catalog x3 times item x2 = x6; item 1: x3 only.
	if got := t2.Rates[0][3]; got != 5*6 {
		t.Errorf("surged truth rate[0][3] = %v, want %v", got, 5*6)
	}
	if got := t2.Rates[1][3]; got != 2*3 {
		t.Errorf("surged truth rate[1][3] = %v, want %v", got, 2*3)
	}
	// Decision demand is untouched: the surge is unanticipated.
	if !reflect.DeepEqual(d2.Rates, dec.Rates) {
		t.Error("surge leaked into the decision rates")
	}
	if tr.Rates[0][3] != 5 {
		t.Error("Apply mutated the input truth rates")
	}
	if _, _, _, err := Surge(0, -1, 0, 1).Apply(0, dec, tr); err == nil {
		t.Error("negative surge factor accepted")
	}
	if _, _, _, err := Surge(99, 2, 0, 1).Apply(0, dec, tr); err == nil {
		t.Error("out-of-range surged item accepted")
	}
}

func TestFaultRandomLinkFaultsDeterministic(t *testing.T) {
	dec, _ := line4(t)
	a, err := RandomLinkFaults(dec.G, 200, 10, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomLinkFaults(dec.G, 200, 10, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Error("same seed produced different scenarios")
	}
	if len(a.Events) == 0 {
		t.Fatal("mtbf 10 over 200 hours produced no outages")
	}
	c, err := RandomLinkFaults(dec.G, 200, 10, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical scenarios")
	}
	for _, e := range a.Events {
		if e.Kind != LinkDown || e.Duration < 1 || e.Start < 0 || e.Start+e.Duration > 200 {
			t.Fatalf("malformed event %+v", e)
		}
	}
	// Parameter validation.
	if _, err := RandomLinkFaults(dec.G, 0, 10, 3, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := RandomLinkFaults(dec.G, 10, 0.5, 3, 1); err == nil {
		t.Error("sub-hour mtbf accepted")
	}
	if _, err := RandomLinkFaults(dec.G, 10, 10, 0.5, 1); err == nil {
		t.Error("sub-hour mttr accepted")
	}
}

func TestFaultTargetedWorstLinks(t *testing.T) {
	dec, _ := line4(t)
	loads := []float64{5, 0, 1, 1, 9, 2} // carried: link0=5, link1=2, link2=11
	sc, err := TargetedWorstLinks(dec.G, loads, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	var cut []int
	for _, e := range sc.Events {
		if e.Kind != LinkDown || e.Start != 3 || e.Duration != 4 {
			t.Fatalf("malformed event %+v", e)
		}
		cut = append(cut, e.Link)
	}
	if !reflect.DeepEqual(cut, []int{2, 0}) {
		t.Errorf("cut links %v, want [2 0] (by carried flow, descending)", cut)
	}
	// k larger than the link count is clamped, not an error.
	sc, err = TargetedWorstLinks(dec.G, loads, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 3 {
		t.Errorf("clamped scenario cuts %d links, want 3", len(sc.Events))
	}
	if _, err := TargetedWorstLinks(dec.G, loads[:2], 1, 0, 1); err == nil {
		t.Error("wrong loads length accepted")
	}
	if _, err := TargetedWorstLinks(dec.G, loads, 0, 0, 1); err == nil {
		t.Error("zero k accepted")
	}
}

func TestFaultMergeAndActiveAt(t *testing.T) {
	a := CacheFailure(1, 2, 2)
	b := Surge(0, 2, 3, 1)
	m := Merge("combo", a, nil, b)
	if len(m.Events) != 2 {
		t.Fatalf("merged %d events, want 2", len(m.Events))
	}
	if got := len(m.ActiveAt(2)); got != 1 {
		t.Errorf("hour 2 has %d active events, want 1", got)
	}
	if got := len(m.ActiveAt(3)); got != 2 {
		t.Errorf("hour 3 has %d active events, want 2", got)
	}
	if got := len(m.ActiveAt(4)); got != 0 {
		t.Errorf("hour 4 has %d active events, want 0", got)
	}
}

func TestFaultControlPlaneOutageWindows(t *testing.T) {
	sc := ControlPlaneOutage(2, 3)
	for hour, want := range map[int]bool{0: false, 1: false, 2: true, 4: true, 5: false} {
		if got := sc.ControlPlaneDownAt(hour); got != want {
			t.Fatalf("hour %d: down=%v, want %v", hour, got, want)
		}
		if sc.CorruptPushAt(hour) {
			t.Fatalf("hour %d: an outage scenario corrupts no pushes", hour)
		}
	}
	var nilSc *Scenario
	if nilSc.ControlPlaneDownAt(0) || nilSc.CorruptPushAt(0) {
		t.Fatal("nil scenario reports faults")
	}
}

func TestFaultCorruptedPushWindows(t *testing.T) {
	sc := CorruptedPush(1, 2)
	for hour, want := range map[int]bool{0: false, 1: true, 2: true, 3: false} {
		if got := sc.CorruptPushAt(hour); got != want {
			t.Fatalf("hour %d: corrupt=%v, want %v", hour, got, want)
		}
		if sc.ControlPlaneDownAt(hour) {
			t.Fatalf("hour %d: a corruption scenario takes nothing down", hour)
		}
	}
}

// TestFaultApplyCPFaultsRewriteNothing pins that control-plane events are
// flags only: an hour with just CP faults returns the input specs by
// pointer identity, like a fault-free hour, while the condition reports
// the CP state.
func TestFaultApplyCPFaultsRewriteNothing(t *testing.T) {
	dec, tr := line4(t)
	sc := Merge("cp", ControlPlaneOutage(0, 2), CorruptedPush(1, 1))
	d0, t0, cond, err := sc.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != dec || t0 != tr {
		t.Fatal("CP-only hour rewrote the specs")
	}
	if !cond.CPDown || cond.CPCorrupt || !cond.Faulty() {
		t.Fatalf("hour 0 condition %+v", cond)
	}
	_, _, cond, err = sc.Apply(1, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !cond.CPDown || !cond.CPCorrupt {
		t.Fatalf("hour 1 condition %+v", cond)
	}
	// CP faults compose with spec-rewriting faults: the link still drops.
	both := Merge("both", sc, &Scenario{Events: []Event{{Kind: LinkDown, Start: 0, Duration: 1, Link: 0}}})
	d2, _, cond, err := both.Apply(0, dec, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d2 == dec {
		t.Fatal("link fault hour kept the same spec pointer")
	}
	if !cond.CPDown || len(cond.LinksDown) != 1 {
		t.Fatalf("composed condition %+v", cond)
	}
}

func TestFaultRandomControlPlaneOutagesDeterministic(t *testing.T) {
	a, err := RandomControlPlaneOutages(200, 12, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomControlPlaneOutages(200, 12, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed, different outage chains")
	}
	c, err := RandomControlPlaneOutages(200, 12, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds, identical outage chains")
	}
	if len(a.Events) == 0 {
		t.Fatal("mtbf 12 over 200 hours produced no outages")
	}
	down := 0
	for h := 0; h < 200; h++ {
		if a.ControlPlaneDownAt(h) {
			down++
		}
	}
	if down == 0 || down == 200 {
		t.Fatalf("outage chain covers %d/200 hours", down)
	}
	for _, e := range a.Events {
		if e.Kind != ControlPlaneDown || e.Duration <= 0 || e.Start < 0 || e.Start+e.Duration > 200 {
			t.Fatalf("malformed event %+v", e)
		}
	}
	if _, err := RandomControlPlaneOutages(0, 12, 3, 1); err == nil {
		t.Fatal("accepted a zero horizon")
	}
	if _, err := RandomControlPlaneOutages(10, 0.5, 3, 1); err == nil {
		t.Fatal("accepted mtbf < 1")
	}
	if _, err := RandomControlPlaneOutages(10, 12, math.NaN(), 1); err == nil {
		t.Fatal("accepted NaN mttr")
	}
}

func TestFaultKindStringsCoverCPKinds(t *testing.T) {
	if ControlPlaneDown.String() != "control-plane-down" || PushCorrupt.String() != "push-corrupt" {
		t.Fatalf("kind strings %q, %q", ControlPlaneDown.String(), PushCorrupt.String())
	}
}
