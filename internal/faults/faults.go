// Package faults is a deterministic, seeded fault injector for the online
// operation harness: it applies scripted per-hour fault scenarios — link
// failures and recoveries, link-capacity degradations, cache-node failures
// with content loss, and demand surges — to the hourly decision/truth specs
// the simulator walks, producing the degraded network each hour's
// controller and evaluation actually see. Scenarios are plain data (a list
// of timed events), so a run is bit-reproducible from its seed, and
// builders compose: independently drawn per-link failures (MTBF/MTTR
// chains), targeted worst-k link cuts by carried flow, and hand-scripted
// events merge into one scenario.
//
// The package deliberately knows nothing about policies or metrics: it
// rewrites placement.Spec inputs (graph, cache capacities, demand rates)
// and reports what it did in a Condition, leaving detection and degraded
// operation to internal/online.
package faults

import (
	"fmt"
	"math"
	"sort"

	"jcr/internal/graph"
	"jcr/internal/placement"
	"jcr/internal/rng"
)

// Kind enumerates the fault types the injector can apply.
type Kind int

// Fault kinds.
const (
	// LinkDown removes both directions of an undirected link.
	LinkDown Kind = iota + 1
	// LinkDegrade multiplies both directed capacities of a link by
	// Factor (0 < Factor < 1 degrades; capacities stay unlimited if they
	// were unlimited).
	LinkDegrade
	// CacheDown fails a cache node: its capacity drops to zero and its
	// contents are lost (the controller must re-place or evict).
	CacheDown
	// DemandSurge multiplies the realized (truth) demand of one item —
	// or the whole catalog — by Factor, leaving the decision demand
	// untouched: the surge is unanticipated by construction.
	DemandSurge
	// ControlPlaneDown marks hours during which the control plane is
	// dead or unreachable: no replan runs and no plan is pushed, so the
	// data plane keeps serving its last-known-good plan (and fail-safe
	// routes for anything that plan does not cover). The event rewrites
	// no spec; it is consulted via Scenario.ControlPlaneDownAt and
	// reported in Condition.CPDown.
	ControlPlaneDown
	// PushCorrupt marks hours whose control-plane push is corrupted in
	// flight: the plan that reaches the data plane is garbage and must be
	// rejected by validation, keeping the last-known-good plan serving.
	// Like ControlPlaneDown it rewrites no spec; it is consulted via
	// Scenario.CorruptPushAt and reported in Condition.CPCorrupt.
	PushCorrupt
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkDegrade:
		return "link-degrade"
	case CacheDown:
		return "cache-down"
	case DemandSurge:
		return "demand-surge"
	case ControlPlaneDown:
		return "control-plane-down"
	case PushCorrupt:
		return "push-corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scripted fault, active for hours in [Start, Start+Duration).
type Event struct {
	Kind Kind
	// Start is the first active hour; Duration is the number of active
	// hours (at least 1 for the event to ever fire).
	Start, Duration int
	// Link indexes the undirected link (see Links) for LinkDown and
	// LinkDegrade.
	Link int
	// Node is the failed cache for CacheDown.
	Node graph.NodeID
	// Item selects the surged item for DemandSurge; negative means the
	// whole catalog.
	Item int
	// Factor is the capacity multiplier (LinkDegrade) or demand
	// multiplier (DemandSurge).
	Factor float64
}

// ActiveAt reports whether the event is in effect at the given hour.
func (e Event) ActiveAt(hour int) bool {
	return hour >= e.Start && hour < e.Start+e.Duration
}

// Scenario is a named list of scripted fault events.
type Scenario struct {
	Name   string
	Events []Event
}

// ActiveAt returns the events in effect at the given hour. A nil scenario
// has none.
func (sc *Scenario) ActiveAt(hour int) []Event {
	if sc == nil {
		return nil
	}
	var out []Event
	for _, e := range sc.Events {
		if e.ActiveAt(hour) {
			out = append(out, e)
		}
	}
	return out
}

// Merge concatenates scenarios into one under a new name; nil inputs are
// skipped. Events compose per hour inside Apply (capacity factors
// multiply, link-down dominates degrade).
func Merge(name string, scs ...*Scenario) *Scenario {
	out := &Scenario{Name: name}
	for _, sc := range scs {
		if sc != nil {
			out.Events = append(out.Events, sc.Events...)
		}
	}
	return out
}

// Link is one undirected link of a topo-built graph: the arc pair created
// by graph.AddEdge, forward arc 2k and reverse arc 2k+1.
type Link struct {
	U, V     graph.NodeID
	Fwd, Rev graph.ArcID
}

// Links enumerates the undirected links of g, validating the AddEdge
// pairing convention (arcs 2k and 2k+1 are mutual reverses). Graphs built
// any other way are rejected: fault injection addresses links, not lone
// arcs, and a wrong pairing would silently cut the wrong direction.
func Links(g *graph.Graph) ([]Link, error) {
	m := g.NumArcs()
	if m%2 != 0 {
		return nil, fmt.Errorf("faults: graph has %d arcs, not edge-paired", m)
	}
	links := make([]Link, m/2)
	for k := range links {
		f, r := g.Arc(2*k), g.Arc(2*k+1)
		if f.From != r.To || f.To != r.From {
			return nil, fmt.Errorf("faults: arcs %d (%d->%d) and %d (%d->%d) are not an undirected pair",
				2*k, f.From, f.To, 2*k+1, r.From, r.To)
		}
		links[k] = Link{U: f.From, V: f.To, Fwd: graph.ArcID(2 * k), Rev: graph.ArcID(2*k + 1)}
	}
	return links, nil
}

// Condition reports what Apply did for one hour, for degradation-state
// accounting and debugging. Empty slices mean a fault-free hour (the specs
// were returned unchanged).
type Condition struct {
	Hour int
	// LinksDown lists removed undirected link indices, ascending.
	LinksDown []int
	// LinksDegraded lists capacity-degraded link indices, ascending.
	LinksDegraded []int
	// CachesDown lists failed cache nodes, ascending.
	CachesDown []graph.NodeID
	// Surged reports whether any demand surge was in effect.
	Surged bool
	// CPDown reports whether the control plane was down this hour
	// (ControlPlaneDown event): no replan, no push.
	CPDown bool
	// CPCorrupt reports whether this hour's control-plane push is
	// corrupted in flight (PushCorrupt event).
	CPCorrupt bool
}

// Faulty reports whether the hour had any fault in effect.
func (c *Condition) Faulty() bool {
	return len(c.LinksDown) > 0 || len(c.LinksDegraded) > 0 || len(c.CachesDown) > 0 ||
		c.Surged || c.CPDown || c.CPCorrupt
}

// Apply produces the degraded decision and truth specs for one hour. The
// two input specs must share one graph (the simulator's convention); the
// outputs share one rebuilt graph with failed links removed and degraded
// capacities scaled, zeroed cache capacities on failed nodes, and surged
// truth demand. A fault-free hour returns the inputs unchanged (same
// pointers), so an empty scenario is bit-for-bit invisible. Pinned nodes
// (the origin) cannot fail: content there is authoritative, not cached.
func (sc *Scenario) Apply(hour int, decision, truth *placement.Spec) (*placement.Spec, *placement.Spec, *Condition, error) {
	cond := &Condition{Hour: hour}
	active := sc.ActiveAt(hour)
	// Control-plane events rewrite nothing: they are flags for the serving
	// layer (skip the replan, corrupt the push). Split them out so an hour
	// with only CP faults still returns the input specs unchanged — same
	// pointers, like a fault-free hour.
	specEvents := active[:0:0]
	for _, e := range active {
		switch e.Kind {
		case ControlPlaneDown:
			cond.CPDown = true
		case PushCorrupt:
			cond.CPCorrupt = true
		default:
			specEvents = append(specEvents, e)
		}
	}
	active = specEvents
	if len(active) == 0 {
		return decision, truth, cond, nil
	}
	if decision.G != truth.G {
		return nil, nil, nil, fmt.Errorf("faults: decision and truth specs must share a graph")
	}
	if decision.NumItems != truth.NumItems {
		return nil, nil, nil, fmt.Errorf("faults: decision has %d items, truth %d", decision.NumItems, truth.NumItems)
	}
	links, err := Links(decision.G)
	if err != nil {
		return nil, nil, nil, err
	}
	down := map[int]bool{}
	capScale := map[int]float64{}
	cacheDown := map[graph.NodeID]bool{}
	surge := map[int]float64{} // item (or -1 for all) -> factor
	for _, e := range active {
		switch e.Kind {
		case LinkDown:
			if e.Link < 0 || e.Link >= len(links) {
				return nil, nil, nil, fmt.Errorf("faults: link %d out of range [0,%d)", e.Link, len(links))
			}
			down[e.Link] = true
		case LinkDegrade:
			if e.Link < 0 || e.Link >= len(links) {
				return nil, nil, nil, fmt.Errorf("faults: link %d out of range [0,%d)", e.Link, len(links))
			}
			if e.Factor <= 0 || e.Factor >= 1 || math.IsNaN(e.Factor) {
				return nil, nil, nil, fmt.Errorf("faults: degrade factor %v must be in (0,1)", e.Factor)
			}
			if f, ok := capScale[e.Link]; ok {
				capScale[e.Link] = f * e.Factor
			} else {
				capScale[e.Link] = e.Factor
			}
		case CacheDown:
			if e.Node < 0 || e.Node >= decision.G.NumNodes() {
				return nil, nil, nil, fmt.Errorf("faults: node %d out of range", e.Node)
			}
			if decision.IsPinned(e.Node) {
				return nil, nil, nil, fmt.Errorf("faults: cannot fail pinned node %d", e.Node)
			}
			cacheDown[e.Node] = true
		case DemandSurge:
			if e.Factor <= 0 || math.IsNaN(e.Factor) || math.IsInf(e.Factor, 0) {
				return nil, nil, nil, fmt.Errorf("faults: surge factor %v must be positive and finite", e.Factor)
			}
			key := e.Item
			if key < 0 {
				key = -1
			} else if key >= truth.NumItems {
				return nil, nil, nil, fmt.Errorf("faults: surged item %d out of range [0,%d)", e.Item, truth.NumItems)
			}
			if f, ok := surge[key]; ok {
				surge[key] = f * e.Factor
			} else {
				surge[key] = e.Factor
			}
		default:
			return nil, nil, nil, fmt.Errorf("faults: unknown event kind %v", e.Kind)
		}
	}

	// Rebuild the graph without failed links, preserving per-direction
	// costs and capacities (feasibility augmentation makes them
	// asymmetric) and the AddEdge pairing convention, so the degraded
	// graph is itself a valid injection target for later hours.
	dg := graph.New(decision.G.NumNodes())
	for k, l := range links {
		if down[k] {
			cond.LinksDown = append(cond.LinksDown, k)
			continue
		}
		f, r := decision.G.Arc(l.Fwd), decision.G.Arc(l.Rev)
		capF, capR := f.Cap, r.Cap
		if scale, ok := capScale[k]; ok {
			cond.LinksDegraded = append(cond.LinksDegraded, k)
			if !math.IsInf(capF, 1) {
				capF *= scale
			}
			if !math.IsInf(capR, 1) {
				capR *= scale
			}
		}
		_, vu := dg.AddEdge(l.U, l.V, f.Cost, capF)
		dg.SetArcCost(vu, r.Cost)
		dg.SetArcCap(vu, capR)
	}

	// Cache capacities: one shared slice, zeroed on failed nodes, as the
	// simulator's MakeRun shares one CacheCap between the spec pair.
	cacheCap := append([]float64(nil), decision.CacheCap...)
	for v := range cacheDown {
		cacheCap[v] = 0
		cond.CachesDown = append(cond.CachesDown, v)
	}
	sort.Ints(cond.LinksDown)
	sort.Ints(cond.LinksDegraded)
	sort.Slice(cond.CachesDown, func(i, j int) bool { return cond.CachesDown[i] < cond.CachesDown[j] })

	// Truth demand surges; decision rates are untouched (the controller
	// plans on pre-surge forecasts).
	truthRates := truth.Rates
	if len(surge) > 0 {
		cond.Surged = true
		truthRates = make([][]float64, len(truth.Rates))
		for i := range truth.Rates {
			factor := 1.0
			if f, ok := surge[-1]; ok {
				factor *= f
			}
			if f, ok := surge[i]; ok {
				factor *= f
			}
			//jcrlint:allow float-eq: exact 1.0 fast path keeps unsurged rows shared, not a tolerance check
			if factor == 1 {
				truthRates[i] = truth.Rates[i]
				continue
			}
			row := append([]float64(nil), truth.Rates[i]...)
			for v := range row {
				row[v] *= factor
			}
			truthRates[i] = row
		}
	}

	dec := &placement.Spec{
		G: dg, NumItems: decision.NumItems, CacheCap: cacheCap,
		ItemSize: decision.ItemSize, Pinned: decision.Pinned, Rates: decision.Rates,
	}
	tr := &placement.Spec{
		G: dg, NumItems: truth.NumItems, CacheCap: cacheCap,
		ItemSize: truth.ItemSize, Pinned: truth.Pinned, Rates: truthRates,
	}
	return dec, tr, cond, nil
}

// RandomLinkFaults draws an independent per-link failure/repair chain over
// the given horizon: an up link fails each hour with probability 1/mtbf, a
// down link recovers with probability 1/mttr (both in hours, at least 1).
// The draw is fully determined by the seed (via internal/rng), so a
// scenario is reproducible across runs and machines.
func RandomLinkFaults(g *graph.Graph, hours int, mtbf, mttr float64, seed int64) (*Scenario, error) {
	links, err := Links(g)
	if err != nil {
		return nil, err
	}
	if hours <= 0 {
		return nil, fmt.Errorf("faults: horizon must be positive, got %d", hours)
	}
	if mtbf < 1 || math.IsNaN(mtbf) {
		return nil, fmt.Errorf("faults: mtbf %v must be at least 1 hour", mtbf)
	}
	if mttr < 1 || math.IsNaN(mttr) {
		return nil, fmt.Errorf("faults: mttr %v must be at least 1 hour", mttr)
	}
	r := rng.New(seed)
	sc := &Scenario{Name: fmt.Sprintf("random-links(mtbf=%g,mttr=%g,seed=%d)", mtbf, mttr, seed)}
	for k := range links {
		downSince := -1
		for h := 0; h < hours; h++ {
			if downSince < 0 {
				if r.Float64() < 1/mtbf {
					downSince = h
				}
			} else if r.Float64() < 1/mttr {
				sc.Events = append(sc.Events, Event{Kind: LinkDown, Start: downSince, Duration: h - downSince, Link: k})
				downSince = -1
			}
		}
		if downSince >= 0 {
			sc.Events = append(sc.Events, Event{Kind: LinkDown, Start: downSince, Duration: hours - downSince, Link: k})
		}
	}
	return sc, nil
}

// TargetedWorstLinks cuts the k links carrying the most flow for hours in
// [start, start+duration): the adversarial counterpart of RandomLinkFaults.
// loads is a per-arc flow vector (placement.EvaluateServing's Loads); a
// link's carried flow is the sum over its two directions. Ties break toward
// the lower link index so the scenario is deterministic.
func TargetedWorstLinks(g *graph.Graph, loads []float64, k, start, duration int) (*Scenario, error) {
	links, err := Links(g)
	if err != nil {
		return nil, err
	}
	if len(loads) != g.NumArcs() {
		return nil, fmt.Errorf("faults: %d loads for %d arcs", len(loads), g.NumArcs())
	}
	if k <= 0 || duration <= 0 {
		return nil, fmt.Errorf("faults: need positive k and duration, got k=%d duration=%d", k, duration)
	}
	if k > len(links) {
		k = len(links)
	}
	order := make([]int, len(links))
	for i := range order {
		order[i] = i
	}
	carried := func(i int) float64 { return loads[links[i].Fwd] + loads[links[i].Rev] }
	sort.SliceStable(order, func(a, b int) bool { return carried(order[a]) > carried(order[b]) })
	sc := &Scenario{Name: fmt.Sprintf("targeted-worst-%d", k)}
	for _, i := range order[:k] {
		sc.Events = append(sc.Events, Event{Kind: LinkDown, Start: start, Duration: duration, Link: i})
	}
	return sc, nil
}

// CacheFailure scripts a single cache-node failure with content loss.
func CacheFailure(node graph.NodeID, start, duration int) *Scenario {
	return &Scenario{
		Name:   fmt.Sprintf("cache-%d-down", node),
		Events: []Event{{Kind: CacheDown, Start: start, Duration: duration, Node: node}},
	}
}

// Surge scripts a demand surge multiplying item's realized demand by
// factor (item < 0 surges the whole catalog).
func Surge(item int, factor float64, start, duration int) *Scenario {
	return &Scenario{
		Name:   fmt.Sprintf("surge-x%g", factor),
		Events: []Event{{Kind: DemandSurge, Start: start, Duration: duration, Item: item, Factor: factor}},
	}
}

// ControlPlaneDownAt reports whether a ControlPlaneDown event is in effect
// at the given hour. Nil-safe.
func (sc *Scenario) ControlPlaneDownAt(hour int) bool {
	if sc == nil {
		return false
	}
	for _, e := range sc.Events {
		if e.Kind == ControlPlaneDown && e.ActiveAt(hour) {
			return true
		}
	}
	return false
}

// CorruptPushAt reports whether a PushCorrupt event is in effect at the
// given hour. Nil-safe.
func (sc *Scenario) CorruptPushAt(hour int) bool {
	if sc == nil {
		return false
	}
	for _, e := range sc.Events {
		if e.Kind == PushCorrupt && e.ActiveAt(hour) {
			return true
		}
	}
	return false
}

// ControlPlaneOutage scripts a control-plane death for hours in
// [start, start+duration): the serving layer runs those hours without a
// replan or a push, and traffic must keep resolving from the last-known-
// good plan and the fail-safe routes.
func ControlPlaneOutage(start, duration int) *Scenario {
	return &Scenario{
		Name:   fmt.Sprintf("cp-outage@%d+%d", start, duration),
		Events: []Event{{Kind: ControlPlaneDown, Start: start, Duration: duration}},
	}
}

// CorruptedPush scripts in-flight plan corruption for hours in
// [start, start+duration): every push during those hours reaches the data
// plane as garbage, and swap validation must reject it, keeping the
// last-known-good plan serving.
func CorruptedPush(start, duration int) *Scenario {
	return &Scenario{
		Name:   fmt.Sprintf("corrupt-push@%d+%d", start, duration),
		Events: []Event{{Kind: PushCorrupt, Start: start, Duration: duration}},
	}
}

// RandomControlPlaneOutages draws a seeded failure/repair chain for the
// control plane over the horizon, the CP counterpart of RandomLinkFaults:
// an up control plane dies each hour with probability 1/mtbf and recovers
// with probability 1/mttr (both in hours, at least 1). Fully determined by
// the seed, so CP chaos is as reproducible as link chaos.
func RandomControlPlaneOutages(hours int, mtbf, mttr float64, seed int64) (*Scenario, error) {
	if hours <= 0 {
		return nil, fmt.Errorf("faults: horizon must be positive, got %d", hours)
	}
	if mtbf < 1 || math.IsNaN(mtbf) {
		return nil, fmt.Errorf("faults: mtbf %v must be at least 1 hour", mtbf)
	}
	if mttr < 1 || math.IsNaN(mttr) {
		return nil, fmt.Errorf("faults: mttr %v must be at least 1 hour", mttr)
	}
	r := rng.New(seed)
	sc := &Scenario{Name: fmt.Sprintf("random-cp-outages(mtbf=%g,mttr=%g,seed=%d)", mtbf, mttr, seed)}
	downSince := -1
	for h := 0; h < hours; h++ {
		if downSince < 0 {
			if r.Float64() < 1/mtbf {
				downSince = h
			}
		} else if r.Float64() < 1/mttr {
			sc.Events = append(sc.Events, Event{Kind: ControlPlaneDown, Start: downSince, Duration: h - downSince})
			downSince = -1
		}
	}
	if downSince >= 0 {
		sc.Events = append(sc.Events, Event{Kind: ControlPlaneDown, Start: downSince, Duration: hours - downSince})
	}
	return sc, nil
}
