package faults

import (
	"math/rand"
	"reflect"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// The repair engine's trees across real fault sequences — links failing,
// degrading, and recovering hour over hour through Scenario.Apply — are
// bit-for-bit the cold canonical trees of each degraded graph:
// node-for-node on distances, arc-for-arc on parents. This is the
// determinism contract of DESIGN.md §3.10 exercised end to end through
// the injector's graph-rebuild path, over hundreds of randomized
// sequences.
func TestEngineRepairMatchesColdOverFaultSequences(t *testing.T) {
	const (
		sequences = 320
		hours     = 8
	)
	rng := rand.New(rand.NewSource(4099))
	var repairs uint64
	for seq := 0; seq < sequences; seq++ {
		n := 6 + rng.Intn(9)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(3)), float64(1+rng.Intn(10)))
		}
		for e := rng.Intn(n); e > 0; e-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(3)), float64(1+rng.Intn(10)))
			}
		}
		spec := func() *placement.Spec {
			return &placement.Spec{
				G:        g,
				NumItems: 1,
				CacheCap: make([]float64, n),
				Pinned:   []graph.NodeID{0},
				Rates:    [][]float64{make([]float64, n)},
			}
		}
		dec, tr := spec(), spec()

		links, err := Links(g)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		sc, err := RandomLinkFaults(g, hours, 3, 2, int64(seq+1))
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		// Mix in capacity degradations: they rebuild the graph too but
		// must leave every cached tree valid.
		for d := 0; d < 2; d++ {
			sc.Events = append(sc.Events, Event{
				Kind: LinkDegrade, Link: rng.Intn(len(links)),
				Start: rng.Intn(hours), Duration: 1 + rng.Intn(3),
				Factor: 0.5,
			})
		}

		eng := graph.NewEngine()
		srcs := []graph.NodeID{0, graph.NodeID(rng.Intn(n))}
		for hour := 0; hour < hours; hour++ {
			dh, _, _, err := sc.Apply(hour, dec, tr)
			if err != nil {
				t.Fatalf("seq %d hour %d: %v", seq, hour, err)
			}
			for _, src := range srcs {
				want := graph.TreeOf(dh.G, src)
				got := eng.Tree(dh.G, src)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seq %d hour %d src %d: engine tree differs from cold Dijkstra\nwant %+v\ngot  %+v",
						seq, hour, src, want, got)
				}
			}
		}
		repairs += eng.Stats().Repairs
	}
	if repairs == 0 {
		t.Fatal("no incremental repairs exercised across any sequence")
	}
}
