package strategy

import (
	"math"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// rnrServe builds route-to-nearest-replica serving paths with best-effort
// semantics: each positive-rate request is served over the least-cost path
// from its nearest replica (ties toward the smaller node id, matching
// Spec.RNRSources), and requests with no reachable replica land in the
// unserved map instead of failing the solve. dist must be the all-pairs
// matrix of s.G.
func rnrServe(s *placement.Spec, pl *placement.Placement, dist [][]float64) ([]placement.ServingPath, map[placement.Request]float64) {
	trees := map[graph.NodeID]graph.ShortestTree{}
	var paths []placement.ServingPath
	var unserved map[placement.Request]float64
	for _, rq := range s.Requests() {
		lam := s.Rates[rq.Item][rq.Node]
		best := -1
		bestD := math.Inf(1)
		for v := range pl.Stores {
			if !pl.Stores[v][rq.Item] {
				continue
			}
			if d := dist[v][rq.Node]; d < bestD {
				bestD = d
				best = v
			}
		}
		if best < 0 {
			if unserved == nil {
				unserved = map[placement.Request]float64{}
			}
			unserved[rq] += lam
			continue
		}
		if best == rq.Node {
			paths = append(paths, placement.ServingPath{Req: rq, Rate: lam}) // local hit
			continue
		}
		tree, ok := trees[best]
		if !ok {
			tree = graph.TreeOf(s.G, best)
			trees[best] = tree
		}
		p, _ := tree.PathTo(s.G, rq.Node) // reachable: dist[best][rq.Node] is finite
		paths = append(paths, placement.ServingPath{Req: rq, Path: p, Rate: lam})
	}
	return paths, unserved
}
