package strategy

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Options configure a strategy built from the registry. Zero values mean
// each strategy's historical defaults, chosen so that a registry-built
// strategy reproduces the exact solver calls the pre-registry code made
// (bit-for-bit: see the experiments' pre-refactor goldens).
type Options struct {
	// Seed drives any randomized subroutine (randomized rounding, random
	// placements); zero means rng.DefaultSeed.
	Seed int64
	// Rng, when non-nil, overrides Seed with a caller-owned generator
	// whose state advances across Decide calls (the ablation experiment's
	// historical calling convention).
	Rng *rand.Rand
	// Workers bounds solver worker pools; zero means GOMAXPROCS.
	Workers int
	// Fractional selects IC-FR (fractional routing) where the strategy
	// distinguishes regimes; default is IC-IR.
	Fractional bool
	// BestEffort routes around failed links, declaring unreachable
	// demand in Plan.Unserved instead of failing the solve.
	BestEffort bool
	// MaxIters bounds a strategy's outer rounds; zero means its default.
	MaxIters int
	// RoundingTrials is how many independent randomized roundings the
	// routing layer draws under integral routing; zero means its default.
	RoundingTrials int
	// NoSolverReuse disables carrying solver state (warm LP bases,
	// routing caches) across rounds and Decide calls. Single-shot callers
	// (the experiments) set it to reproduce historical cold solves
	// byte-for-byte; the online controller leaves reuse on.
	NoSolverReuse bool
	// WarmStart seeds each Decide with the previous Decide's placement
	// (evicted down to the current capacities when caches shrank), the
	// online controller's hour-to-hour operation.
	WarmStart bool
}

// registration couples a builder with its registry metadata.
type registration struct {
	doc   string
	build func(Options) Strategy
}

// registry holds the registered strategy builders by name. Mutated only
// from this package's init functions, read-only afterwards.
var registry = map[string]registration{}

// register adds a strategy builder; called from init functions, so a
// duplicate name is a programming error worth a panic.
func register(name, doc string, build func(Options) Strategy) {
	if _, dup := registry[name]; dup {
		//jcrlint:allow lib-panic: duplicate registration is a programmer error caught at init time
		panic(fmt.Sprintf("strategy: duplicate registration %q", name))
	}
	registry[name] = registration{doc: doc, build: build}
}

// Names lists the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Doc returns the one-line description of a registered strategy.
func Doc(name string) string { return registry[name].doc }

// New builds a registered strategy. Unknown names report the full roster,
// so callers can surface it directly.
func New(name string, o Options) (Strategy, error) {
	reg, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("strategy: unknown strategy %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return reg.build(o), nil
}

// MustNew is New for statically known names; it panics on unknown names.
func MustNew(name string, o Options) Strategy {
	st, err := New(name, o)
	if err != nil {
		//jcrlint:allow lib-panic: MustNew is for statically known names; a miss is a programmer error
		panic(err)
	}
	return st
}
