// Package strategy is the seam between the joint caching-and-routing
// solvers and everything that drives them. A Strategy turns one Instance
// (a demand spec on a possibly fault-degraded network) into one Plan (a
// placement plus serving paths), behind a uniform interface: the paper's
// algorithms (Alg. 1, Alg. 2, the Section 4.3.3 alternating optimizer, the
// brute-force exact solver) and the related-work baselines
// (Ioannidis-Yeh-style fixed-path caching, MinDelay-style joint
// forwarding+caching, CacheRateNetwork's random-cache-then-optimal-route)
// all register here, so the online controller, the serving control plane,
// the experiments, and the baseline arena can run any of them
// interchangeably. Plans are validated uniformly via internal/check
// (Validate), and every Decide threads its context into the underlying
// LP/flow/graph solvers (enforced by the strategy-ctx lint).
package strategy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"jcr/internal/check"
	"jcr/internal/graph"
	"jcr/internal/placement"
)

// costTol is the relative slack allowed between a plan's predicted cost
// (and congestion) and the values recomputed from its paths by
// placement.EvaluateServing.
const costTol = 1e-6

// Instance is one solve's input: the demand spec on the network to
// optimize for. Demand (Spec.Rates) and the fault state (Spec.G is the
// degraded graph, Spec.CacheCap the surviving caches) both live in the
// spec, exactly as the online controller's decision specs are built.
type Instance struct {
	// Spec is the placement problem: graph, catalog, cache capacities,
	// pinned origins, and request rates.
	Spec *placement.Spec
	// Dist is the all-pairs least-cost matrix of Spec.G. Optional: a
	// strategy that needs it computes it when nil (Distances).
	Dist [][]float64
	// Initial optionally seeds warm-startable strategies with a previous
	// placement (the online controller's hour-to-hour carry). Strategies
	// without warm-start semantics ignore it.
	Initial *placement.Placement
}

// Distances returns the instance's all-pairs matrix, computing it from the
// graph when the caller did not provide one.
func (inst Instance) Distances() [][]float64 {
	if inst.Dist != nil {
		return inst.Dist
	}
	return graph.AllPairs(inst.Spec.G)
}

// Plan is one solve's output.
type Plan struct {
	Placement *placement.Placement
	// Paths serve the requests; under fractional routing a request may
	// appear with several partial rates summing to its demand.
	Paths []placement.ServingPath
	// Unserved maps requests the plan knowingly leaves unserved (no
	// replica reachable, typically on a partitioned network) to their
	// demand rate. Nil when the plan serves everything.
	Unserved map[placement.Request]float64
	// Cost is the predicted total routing cost of the paths, in
	// placement.EvaluateServing semantics (Eq. 1a).
	Cost float64
	// MaxUtilization is the predicted worst link load-to-capacity ratio;
	// above 1 the plan exceeds some link capacity.
	MaxUtilization float64
}

// UnservedMass sums the plan's unserved demand. Keys are visited in
// sorted order so the float accumulation is deterministic (map iteration
// order is not).
func (p *Plan) UnservedMass() float64 {
	if len(p.Unserved) == 0 {
		return 0
	}
	keys := make([]placement.Request, 0, len(p.Unserved))
	for rq := range p.Unserved {
		keys = append(keys, rq)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Item != keys[b].Item {
			return keys[a].Item < keys[b].Item
		}
		return keys[a].Node < keys[b].Node
	})
	var u float64
	for _, rq := range keys {
		u += p.Unserved[rq]
	}
	return u
}

// Stats reports how a plan was computed.
type Stats struct {
	// Iterations counts the strategy's outer rounds (alternating rounds,
	// gradient steps, restarts); 1 for single-shot strategies.
	Iterations int
	// Method labels the dominant subroutine (e.g. the routing method).
	Method string
}

// Strategy is one joint caching-and-routing algorithm. Implementations
// must be deterministic given their configuration (Options.Seed) and must
// honor ctx cancellation by threading it into their solver calls.
type Strategy interface {
	// Name is the registry id, stable across runs.
	Name() string
	// Decide computes a plan for the instance. A nil ctx means no
	// cancellation.
	Decide(ctx context.Context, inst Instance) (*Plan, Stats, error)
}

// Warm is implemented by strategies that carry solver state (warm-started
// LP bases, routing caches, previous placements) across Decide calls.
type Warm interface {
	Strategy
	// Invalidate drops all carried state; the next Decide starts cold.
	Invalidate()
}

// Sized is implemented by strategies with hard instance-size limits (the
// brute-force exact solver). The arena skips instances a strategy reports
// it cannot fit instead of recording a failure.
type Sized interface {
	Strategy
	// Fits reports whether the instance is within the strategy's limits.
	Fits(inst Instance) bool
}

// Validate checks a plan against the Eq. (1) feasibility invariants,
// uniformly for every strategy: the placement respects cache capacities,
// every positive-rate request is fully served by the paths (minus declared
// Unserved mass), every path is a real path of the graph ending at its
// requester and starting at a replica, and the plan's predicted Cost and
// MaxUtilization agree with the values recomputed from its paths.
func Validate(inst Instance, p *Plan) error {
	if p == nil || p.Placement == nil {
		return fmt.Errorf("strategy: nil plan")
	}
	if err := check.PartialFlow(inst.Spec, p.Placement, p.Paths, p.Unserved, true); err != nil {
		return fmt.Errorf("strategy: %w", err)
	}
	cost, _, util := placement.EvaluateServing(inst.Spec, p.Paths, p.Placement)
	if math.Abs(cost-p.Cost) > costTol*(1+math.Abs(cost)) {
		return fmt.Errorf("strategy: plan cost %.9g disagrees with recomputed %.9g", p.Cost, cost)
	}
	if math.Abs(util-p.MaxUtilization) > costTol*(1+math.Abs(util)) {
		return fmt.Errorf("strategy: plan congestion %.9g disagrees with recomputed %.9g", p.MaxUtilization, util)
	}
	return nil
}

// finishPlan fills a plan's predicted cost and congestion from its paths,
// the uniform semantics Validate checks against.
func finishPlan(s *placement.Spec, p *Plan) *Plan {
	cost, _, util := placement.EvaluateServing(s, p.Paths, p.Placement)
	p.Cost = cost
	p.MaxUtilization = util
	return p
}

// pollCtx returns ctx's error, wrapped, when it is canceled; nil-safe.
func pollCtx(ctx context.Context, what string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("strategy: %s: %w", what, err)
	}
	return nil
}
