package strategy

import (
	"context"
	"math"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

func init() {
	register("mindelay", "MinDelay-style joint forwarding+caching: multipath splits alternate with greedy per-path caching (arXiv 1710.05130)",
		func(o Options) Strategy { return &MinDelay{Rounds: o.MaxIters, Workers: o.Workers} })
}

// MinDelay is a MinDelay-style joint forwarding-and-caching heuristic
// (arXiv 1710.05130), adapted to this repo's rate-based model: the
// forwarding plane splits each request's flow over the k=2 cheapest
// replica paths (inversely weighted by path cost — the load-spreading the
// original achieves with marginal-delay gradients at each hop), and the
// caching plane re-places content to maximize the per-path saving along
// the current forwarding paths. The two alternate for a few rounds,
// keeping the best (most-served, then cheapest, then least congested)
// iterate. Unlike the paper's alternating optimizer it never solves the
// routing subproblem to optimality and its splits ignore link capacities —
// the structural gap the arena is meant to expose.
type MinDelay struct {
	// Rounds is how many forwarding/caching alternations run; zero
	// means 4.
	Rounds int
	// Workers bounds the caching subproblem's worker pool.
	Workers int
}

// Name implements Strategy.
func (m *MinDelay) Name() string { return "mindelay" }

// Decide implements Strategy.
func (m *MinDelay) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	spec := inst.Spec
	dist := inst.Distances()
	rounds := m.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	pl := spec.NewPlacement() // origin-only start, trivially feasible
	var best *Plan
	iters := 0
	for t := 0; t < rounds; t++ {
		if err := pollCtx(ctx, "mindelay round"); err != nil {
			return nil, Stats{}, err
		}
		iters = t + 1
		// Forwarding step: split every request over its two cheapest
		// replica paths under the current placement.
		paths, _ := multipathServe(spec, pl, dist)
		// Caching step: re-place to maximize the saving along those
		// paths (the greedy file-level subroutine; ctx-aware).
		newPl, err := placement.PlacePerPathOpts(ctx, spec, paths, placement.PerPathOptions{
			Method:  placement.PerPathGreedy,
			Workers: m.Workers,
		})
		if err != nil {
			return nil, Stats{}, err
		}
		// Re-aim forwarding at the new replicas and score the iterate.
		newPaths, uns := multipathServe(spec, newPl, dist)
		cand := finishPlan(spec, &Plan{Placement: newPl, Paths: newPaths, Unserved: uns})
		if best == nil || betterPlan(spec, cand, best) {
			best = cand
		}
		pl = newPl
	}
	return best, Stats{Iterations: iters, Method: "multipath+greedy"}, nil
}

// betterPlan ranks candidate plans: more served demand first, then lower
// cost, then lower congestion.
func betterPlan(spec *placement.Spec, a, b *Plan) bool {
	ua, ub := a.UnservedMass(), b.UnservedMass()
	if math.Abs(ua-ub) > costTol*(1+math.Abs(ua)) {
		return ua < ub
	}
	if math.Abs(a.Cost-b.Cost) > costTol*(1+math.Abs(a.Cost)) {
		return a.Cost < b.Cost
	}
	return a.MaxUtilization < b.MaxUtilization
}

// multipathServe forwards every request over (up to) its two cheapest
// distinct-replica paths, splitting the rate inversely to path cost, and
// declares requests no replica reaches as unserved. A local replica takes
// the whole rate.
func multipathServe(s *placement.Spec, pl *placement.Placement, dist [][]float64) ([]placement.ServingPath, map[placement.Request]float64) {
	trees := map[graph.NodeID]graph.ShortestTree{}
	pathFrom := func(src graph.NodeID, dst graph.NodeID) graph.Path {
		tree, ok := trees[src]
		if !ok {
			tree = graph.TreeOf(s.G, src)
			trees[src] = tree
		}
		p, _ := tree.PathTo(s.G, dst)
		return p
	}
	var paths []placement.ServingPath
	var unserved map[placement.Request]float64
	for _, rq := range s.Requests() {
		lam := s.Rates[rq.Item][rq.Node]
		// Two nearest distinct replicas (ties toward the smaller id).
		r1, r2 := -1, -1
		d1, d2 := math.Inf(1), math.Inf(1)
		for v := range pl.Stores {
			if !pl.Stores[v][rq.Item] {
				continue
			}
			d := dist[v][rq.Node]
			if d < d1 {
				r2, d2 = r1, d1
				r1, d1 = v, d
			} else if d < d2 {
				r2, d2 = v, d
			}
		}
		switch {
		case r1 < 0:
			if unserved == nil {
				unserved = map[placement.Request]float64{}
			}
			unserved[rq] += lam
		case r1 == rq.Node || r2 < 0 || math.IsInf(d2, 1):
			// A local hit or a single reachable replica: no split.
			paths = append(paths, placement.ServingPath{Req: rq, Path: pathFrom(r1, rq.Node), Rate: lam})
		default:
			// Split inversely to cost: w_p = 1/(d_p + 1), so cheaper
			// paths carry more but the second replica stays warm (the
			// multipath behavior MinDelay's hop-by-hop splits induce).
			w1, w2 := 1/(d1+1), 1/(d2+1)
			rate1 := lam * w1 / (w1 + w2)
			paths = append(paths,
				placement.ServingPath{Req: rq, Path: pathFrom(r1, rq.Node), Rate: rate1},
				placement.ServingPath{Req: rq, Path: pathFrom(r2, rq.Node), Rate: lam - rate1},
			)
		}
	}
	return paths, unserved
}
