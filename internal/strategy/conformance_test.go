package strategy

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
	"jcr/internal/rng"
)

// conformanceSpec builds a randomized small instance: a ring-with-chords
// network, a pinned origin, a couple of caches, and random demand. Small
// enough that every registered strategy — including the brute-force exact
// solver — fits, and generously provisioned so none needs best-effort
// escape hatches.
func conformanceSpec(r *rand.Rand) *placement.Spec {
	const nodes = 6
	const items = 3
	g := graph.New(nodes)
	for v := 0; v < nodes; v++ {
		g.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%nodes), 1+r.Float64()*9, 100)
	}
	// Two random chords keep path enumeration interesting but bounded.
	for c := 0; c < 2; c++ {
		u := graph.NodeID(r.Intn(nodes))
		w := graph.NodeID(r.Intn(nodes))
		if u != w {
			g.AddEdge(u, w, 1+r.Float64()*9, 100)
		}
	}
	cacheCap := make([]float64, nodes)
	cacheCap[2] = float64(1 + r.Intn(2))
	cacheCap[4] = float64(1 + r.Intn(2))
	rates := make([][]float64, items)
	for i := range rates {
		rates[i] = make([]float64, nodes)
	}
	for k := 0; k < 4; k++ {
		rates[r.Intn(items)][1+r.Intn(nodes-1)] += 1 + r.Float64()*4
	}
	return &placement.Spec{
		G:        g,
		NumItems: items,
		CacheCap: cacheCap,
		Pinned:   []graph.NodeID{0},
		Rates:    rates,
	}
}

// planFingerprint reduces a plan to a comparable value: the placement,
// the (request, nodes, rate) of every path, the unserved map, and the
// predicted metrics.
func planFingerprint(s *placement.Spec, p *Plan) string {
	return fmt.Sprintf("%v|%v|%v|%.12g|%.12g", p.Placement.Stores, pathTriples(s, p), p.Unserved, p.Cost, p.MaxUtilization)
}

func pathTriples(s *placement.Spec, p *Plan) [][3]interface{} {
	out := make([][3]interface{}, 0, len(p.Paths))
	for _, sp := range p.Paths {
		out = append(out, [3]interface{}{sp.Req, sp.Path.Nodes(s.G), sp.Rate})
	}
	return out
}

// TestConformance is the registry-wide contract: every registered
// strategy, on every randomized small spec, returns a plan that passes
// the uniform Validate, refuses a pre-canceled context, and reproduces
// the same plan when rebuilt with the same options.
func TestConformance(t *testing.T) {
	specs := make([]*placement.Spec, 4)
	for k := range specs {
		specs[k] = conformanceSpec(rng.Derive(7, int64(k)))
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			for k, spec := range specs {
				opts := Options{Seed: 11}
				st, err := New(name, opts)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				inst := Instance{Spec: spec}
				if sized, ok := st.(Sized); ok && !sized.Fits(inst) {
					t.Fatalf("spec %d: conformance specs must fit every strategy", k)
				}
				plan, stats, err := st.Decide(context.Background(), inst)
				if err != nil {
					t.Fatalf("spec %d: Decide: %v", k, err)
				}
				if err := Validate(inst, plan); err != nil {
					t.Errorf("spec %d: invalid plan: %v", k, err)
				}
				if stats.Iterations < 1 {
					t.Errorf("spec %d: stats report %d iterations", k, stats.Iterations)
				}
				if plan.UnservedMass() > 0 {
					t.Errorf("spec %d: %v unserved on a generously provisioned instance", k, plan.UnservedMass())
				}
				// Refuses a pre-canceled context (fresh strategy: no
				// carried state can answer from cache).
				st2 := MustNew(name, opts)
				if _, _, err := st2.Decide(canceled, inst); err == nil {
					t.Errorf("spec %d: Decide ignored a canceled context", k)
				}
				// Deterministic: a rebuilt strategy reproduces the plan.
				st3 := MustNew(name, opts)
				plan3, _, err := st3.Decide(context.Background(), inst)
				if err != nil {
					t.Fatalf("spec %d: repeat Decide: %v", k, err)
				}
				if a, b := planFingerprint(spec, plan), planFingerprint(spec, plan3); a != b {
					t.Errorf("spec %d: nondeterministic plan:\n%s\n%s", k, a, b)
				}
			}
		})
	}
}

// TestConformanceRoster pins the registry roster: the paper's four
// algorithms plus the three related-work baselines.
func TestConformanceRoster(t *testing.T) {
	want := []string{"alg1", "alg2", "alternating", "cachenet-random", "decomposed", "exact", "iy-fixedpath", "mindelay"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry roster = %v, want %v", got, want)
	}
	for _, name := range want {
		if Doc(name) == "" {
			t.Errorf("strategy %s has no doc line", name)
		}
	}
}
