package strategy

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"jcr/internal/core"
	"jcr/internal/placement"
	"jcr/internal/routing"
)

func init() {
	register("alternating", "Section 4.3.3 alternating placement/routing optimization (ours)",
		func(o Options) Strategy {
			return &Alternating{
				Fractional:     o.Fractional,
				WarmStart:      o.WarmStart,
				BestEffort:     o.BestEffort,
				Rng:            o.Rng,
				Seed:           o.Seed,
				Workers:        o.Workers,
				MaxIters:       o.MaxIters,
				RoundingTrials: o.RoundingTrials,
				NoSolverReuse:  o.NoSolverReuse,
			}
		})
}

// Alternating is the paper's Section 4.3.3 optimizer behind the Strategy
// interface: alternate the per-path placement subproblem with the routing
// subproblem until no round improves. It is a Warm strategy: unless
// NoSolverReuse is set it carries a core.SolveState (warm LP bases and
// routing caches) across rounds and Decide calls, and with WarmStart it
// additionally seeds each Decide with the previous plan's placement.
type Alternating struct {
	// Fractional selects IC-FR routing; default is IC-IR.
	Fractional bool
	// WarmStart seeds each Decide with the previous Decide's placement,
	// evicted down to the current capacities when caches shrank or
	// failed.
	WarmStart bool
	// BestEffort routes around failed links: demand with no reachable
	// replica is declared in Plan.Unserved instead of failing the solve,
	// and a repair post-pass re-homes content for stranded requesters
	// (see repairStranded).
	BestEffort bool
	// Rng drives the routing's randomized rounding; nil derives a
	// generator from Seed per Decide.
	Rng *rand.Rand
	// Seed seeds the rounding generator when Rng is nil; zero means
	// rng.DefaultSeed.
	Seed int64
	// Workers bounds the subproblem solvers' worker pools.
	Workers int
	// MaxIters bounds the alternating rounds; zero means 10.
	MaxIters int
	// RoundingTrials is the routing layer's randomized-rounding draw
	// count; zero means its default.
	RoundingTrials int
	// PlacementMethod picks the Section 4.3.1 subroutine variant.
	PlacementMethod placement.PerPathMethod
	// NoSolverReuse disables the carried SolveState; every subproblem
	// then solves cold, reproducing single-shot historical behavior.
	NoSolverReuse bool
	// Decompose, when non-nil, threads the partition-aware routing path
	// into every round's routing subproblem (see routing.DecomposeOptions
	// and the Decomposed strategy wrapping this).
	Decompose *routing.DecomposeOptions

	prev  *placement.Placement
	state *core.SolveState
}

// Name implements Strategy.
func (a *Alternating) Name() string { return "alternating" }

// Invalidate implements Warm: the next Decide starts cold, with no carried
// placement and no retained solver state.
func (a *Alternating) Invalidate() {
	a.prev = nil
	a.state.Invalidate()
}

// Decide implements Strategy.
func (a *Alternating) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	spec := inst.Spec
	opts := core.AlternatingOptions{
		Fractional:      a.Fractional,
		Rng:             a.Rng,
		Seed:            a.Seed,
		Workers:         a.Workers,
		MaxIters:        a.MaxIters,
		PlacementMethod: a.PlacementMethod,
	}
	opts.Routing.BestEffort = a.BestEffort
	opts.Routing.RoundingTrials = a.RoundingTrials
	opts.Routing.Decompose = a.Decompose
	if !a.NoSolverReuse {
		if a.state == nil {
			a.state = core.NewSolveState()
		}
		opts.State = a.state
	}
	switch {
	case a.WarmStart && a.prev != nil:
		init := a.prev
		if spec.CheckFeasible(init) != nil {
			// Caches shrank or failed since the last solve: the lost
			// content cannot seed this round's optimization.
			init = init.Clone()
			spec.EvictToFit(init)
		}
		opts.Initial = init
	case inst.Initial != nil:
		opts.Initial = inst.Initial
	}
	sol, err := core.AlternatingContext(ctx, spec, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	pths, uns := sol.Routing.Paths, sol.Routing.Unserved
	cost, util := sol.Cost, sol.MaxUtilization
	if a.BestEffort && len(uns) > 0 {
		pths = repairStranded(spec, sol.Placement, pths, uns, inst.Distances())
		// The repair moved content and dropped paths; re-measure.
		cost, _, util = placement.EvaluateServing(spec, pths, sol.Placement)
	}
	a.prev = sol.Placement
	plan := &Plan{Placement: sol.Placement, Paths: pths, Unserved: uns, Cost: cost, MaxUtilization: util}
	return plan, Stats{Iterations: sol.Iterations, Method: sol.Routing.Method}, nil
}

// repairStranded is the degradation-aware post-pass of the best-effort
// alternating strategy. The optimizer has no objective term for demand it
// declared unserved (no path reaches a replica), so on a partitioned
// network it leaves cut-off components without the content their caches
// could hold. For each stranded request, largest demand first, this stores
// the item at the nearest cache its requester can still reach, evicting the
// slots whose loss is cheapest -- where an eviction's loss counts only
// demand that becomes truly stranded (a dropped request with another
// reachable replica is re-served via nearest-replica fallback) -- and
// accepts a swap only when it strands strictly less demand than it
// recovers. Paths served from an evicted replica are dropped and their
// demand declared unserved; the repaired request's own Unserved entry
// stays, and the evaluator re-checks reachability and serves it from the
// new replica. Returns the surviving paths.
func repairStranded(spec *placement.Spec, pl *placement.Placement, paths []placement.ServingPath, unserved map[placement.Request]float64, dist [][]float64) []placement.ServingPath {
	// Paths indexed by their replica: the response originates at the
	// path's source (at the requester itself for a local hit), so
	// evicting that copy drops these paths.
	bySource := map[placement.Request][]int{}
	for k := range paths {
		src := paths[k].Req.Node
		if len(paths[k].Path.Arcs) > 0 {
			src = paths[k].Path.Source(spec.G)
		}
		key := placement.Request{Item: paths[k].Req.Item, Node: src}
		bySource[key] = append(bySource[key], k)
	}
	dropped := make([]bool, len(paths))
	// reachOther reports a live replica of item j reaching node s other
	// than the one at skip (pass skip < 0 for "any replica").
	reachOther := func(j, s, skip int) bool {
		for u := range pl.Stores {
			if u != skip && pl.Stores[u][j] && !math.IsInf(dist[u][s], 1) {
				return true
			}
		}
		return false
	}
	// lossOf is the demand truly stranded by evicting item j from v: the
	// requests served from that replica with no other reachable copy.
	// (Declared-unserved requests reach no replica at all, so they never
	// add to the loss.)
	lossOf := func(v, j int) float64 {
		var loss float64
		counted := map[int]bool{}
		for _, k := range bySource[placement.Request{Item: j, Node: v}] {
			if dropped[k] {
				continue
			}
			s := paths[k].Req.Node
			if counted[s] || reachOther(j, s, v) {
				continue
			}
			counted[s] = true
			loss += spec.Rates[j][s]
		}
		return loss
	}
	evictReplica := func(v, j int) {
		for _, k := range bySource[placement.Request{Item: j, Node: v}] {
			if dropped[k] {
				continue
			}
			dropped[k] = true
			unserved[paths[k].Req] += paths[k].Rate
		}
		pl.Stores[v][j] = false
	}
	reqs := make([]placement.Request, 0, len(unserved))
	for rq := range unserved {
		reqs = append(reqs, rq)
	}
	sort.Slice(reqs, func(a, b int) bool {
		//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
		if la, lb := unserved[reqs[a]], unserved[reqs[b]]; la != lb {
			return la > lb
		}
		if reqs[a].Item != reqs[b].Item {
			return reqs[a].Item < reqs[b].Item
		}
		return reqs[a].Node < reqs[b].Node
	})
	for _, rq := range reqs {
		lam := unserved[rq]
		if lam <= 0 || reachOther(rq.Item, rq.Node, -1) {
			continue // already repaired by an earlier request's replica
		}
		type cand struct {
			v int
			d float64
		}
		var cands []cand
		for v := range pl.Stores {
			if spec.IsPinned(v) || spec.CacheCap[v] <= 0 {
				continue
			}
			if d := dist[v][rq.Node]; !math.IsInf(d, 1) {
				cands = append(cands, cand{v, d})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].v < cands[b].v
		})
		for _, c := range cands {
			if repairStoreAt(spec, pl, lossOf, evictReplica, c.v, rq, lam) {
				break
			}
		}
	}
	var out []placement.ServingPath
	for k := range paths {
		if !dropped[k] {
			out = append(out, paths[k])
		}
	}
	return out
}

// repairStoreAt tries to store rq's item at cache v, freeing space by
// evicting the cheapest-loss slots first. It refuses a swap that does not
// strictly pay for itself in stranded demand.
func repairStoreAt(spec *placement.Spec, pl *placement.Placement, lossOf func(v, j int) float64, evictReplica func(v, j int), v int, rq placement.Request, lam float64) bool {
	need := spec.Occupancy(pl, v) + spec.Size(rq.Item) - spec.CacheCap[v]
	if need <= 0 {
		pl.Stores[v][rq.Item] = true
		return true
	}
	type slot struct {
		j    int
		loss float64
	}
	var slots []slot
	for j := 0; j < spec.NumItems; j++ {
		if pl.Stores[v][j] && j != rq.Item {
			slots = append(slots, slot{j, lossOf(v, j)})
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		//jcrlint:allow float-eq: deterministic sort tie-break, not a tolerance check
		if slots[a].loss != slots[b].loss {
			return slots[a].loss < slots[b].loss
		}
		return slots[a].j < slots[b].j
	})
	var freed, loss float64
	var evict []int
	for _, sl := range slots {
		if freed >= need {
			break
		}
		evict = append(evict, sl.j)
		freed += spec.Size(sl.j)
		loss += sl.loss
	}
	if freed < need || loss >= lam {
		return false
	}
	for _, j := range evict {
		evictReplica(v, j)
	}
	pl.Stores[v][rq.Item] = true
	return true
}
