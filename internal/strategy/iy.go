package strategy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// fracEps is the fractional mass below which a relaxed caching variable is
// treated as zero during rounding.
const fracEps = 1e-9

func init() {
	register("iy-fixedpath", "Ioannidis-Yeh continuous-greedy caching over fixed shortest paths (arXiv 1708.05999)",
		func(o Options) Strategy { return &IYFixedPath{BestEffort: o.BestEffort, Steps: o.MaxIters} })
}

// IYFixedPath is the Ioannidis-Yeh-style baseline (arXiv 1708.05999):
// routing is fixed up front — every request is served along the least-cost
// path from its nearest designated server (a pinned origin) — and only
// caching is optimized, by maximizing the expected caching gain with the
// continuous-greedy (Frank-Wolfe) ascent those papers analyze, followed by
// deterministic rounding. The relaxation is exact here: with fixed paths
// and the serve-from-nearest-on-path-replica cut, the gain of a request is
// sum over path prefixes of the cost delta times the probability no
// earlier node holds the item, and the gradient is computed in closed
// form. What the baseline gives up versus the paper's alternating
// optimizer is routing: paths never react to the placement or to link
// capacities, which is exactly the comparison the paper draws.
type IYFixedPath struct {
	// BestEffort declares requests whose node no pinned origin reaches in
	// Plan.Unserved instead of failing on a partitioned network.
	BestEffort bool
	// Steps is the continuous-greedy step count (the 1/T discretization);
	// zero means 50.
	Steps int
}

// Name implements Strategy.
func (p *IYFixedPath) Name() string { return "iy-fixedpath" }

// iyRequest is one request's fixed serving path, preprocessed for gradient
// evaluation: the upstream node sequence from the requester to the server
// and the cumulative fetch-cost deltas along it.
type iyRequest struct {
	req  placement.Request
	rate float64
	path graph.Path
	// up[k] is the k-th node on the request's upstream walk (up[0] is
	// the requester, the last is the server); delta[k] is the extra cost
	// of fetching from up[k] rather than up[k-1] (k >= 1).
	up    []graph.NodeID
	delta []float64
}

// Decide implements Strategy.
func (p *IYFixedPath) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	spec := inst.Spec
	if len(spec.Pinned) == 0 {
		return nil, Stats{}, fmt.Errorf("strategy: iy-fixedpath needs a pinned origin as the designated server")
	}
	if err := pollCtx(ctx, "iy-fixedpath"); err != nil {
		return nil, Stats{}, err
	}
	dist := inst.Distances()
	// Fixed routing: serve each request from its nearest pinned origin
	// over that origin's shortest-path tree.
	trees := map[graph.NodeID]graph.ShortestTree{}
	var reqs []iyRequest
	var unserved map[placement.Request]float64
	for _, rq := range spec.Requests() {
		lam := spec.Rates[rq.Item][rq.Node]
		server := graph.NodeID(-1)
		bestD := math.Inf(1)
		for _, v := range spec.Pinned {
			if d := dist[v][rq.Node]; d < bestD {
				bestD = d
				server = v
			}
		}
		if server < 0 || math.IsInf(bestD, 1) {
			if !p.BestEffort {
				return nil, Stats{}, fmt.Errorf("strategy: iy-fixedpath: requester %d unreachable from every origin", rq.Node)
			}
			if unserved == nil {
				unserved = map[placement.Request]float64{}
			}
			unserved[rq] += lam
			continue
		}
		tree, ok := trees[server]
		if !ok {
			tree = graph.TreeOf(spec.G, server)
			trees[server] = tree
		}
		path, _ := tree.PathTo(spec.G, rq.Node)
		ir := iyRequest{req: rq, rate: lam, path: path}
		nodes := path.Nodes(spec.G)
		if len(nodes) == 0 {
			nodes = []graph.NodeID{rq.Node} // local: requester is the server
		}
		// Walk upstream (requester -> server), accumulating cost deltas.
		ir.up = append(ir.up, nodes[len(nodes)-1])
		ir.delta = append(ir.delta, 0)
		for k := len(path.Arcs) - 1; k >= 0; k-- {
			ir.up = append(ir.up, nodes[k])
			ir.delta = append(ir.delta, spec.G.Arc(path.Arcs[k]).Cost)
		}
		reqs = append(reqs, ir)
	}
	// Relaxed caching variables y[v][i] for cache-capable non-pinned
	// nodes; pinned nodes are fixed at 1 implicitly via isServer.
	n := spec.G.NumNodes()
	cacheable := make([]bool, n)
	for v := 0; v < n; v++ {
		cacheable[v] = !spec.IsPinned(v) && spec.CacheCap[v] > 0
	}
	y := make([][]float64, n)
	grad := make([][]float64, n)
	for v := 0; v < n; v++ {
		if cacheable[v] {
			y[v] = make([]float64, spec.NumItems)
			grad[v] = make([]float64, spec.NumItems)
		}
	}
	steps := p.Steps
	if steps <= 0 {
		steps = 50
	}
	// Continuous greedy: T steps of y += x*/T where x* maximizes
	// <grad G(y), x> over the per-node knapsack polytope.
	for t := 0; t < steps; t++ {
		if err := pollCtx(ctx, "iy-fixedpath ascent"); err != nil {
			return nil, Stats{}, err
		}
		for v := 0; v < n; v++ {
			for i := range grad[v] {
				grad[v][i] = 0
			}
		}
		for ri := range reqs {
			ir := &reqs[ri]
			// survive = prod over earlier upstream nodes of (1 - y); a
			// pinned node pins the product to 0 past it.
			accumGrad(spec, ir, y, cacheable, grad)
		}
		for v := 0; v < n; v++ {
			if cacheable[v] {
				ascendKnapsack(spec, y[v], grad[v], spec.CacheCap[v], steps)
			}
		}
	}
	// Deterministic rounding: per node, keep the largest-mass items that
	// fit (ties toward the smaller item id).
	pl := spec.NewPlacement()
	for v := 0; v < n; v++ {
		if !cacheable[v] {
			continue
		}
		order := make([]int, spec.NumItems)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return y[v][order[a]] > y[v][order[b]] })
		room := spec.CacheCap[v]
		for _, i := range order {
			if y[v][i] <= fracEps {
				break
			}
			if sz := spec.Size(i); sz <= room+capSlack {
				pl.Stores[v][i] = true
				room -= sz
			}
		}
	}
	paths := make([]placement.ServingPath, len(reqs))
	for ri := range reqs {
		paths[ri] = placement.ServingPath{Req: reqs[ri].req, Path: reqs[ri].path, Rate: reqs[ri].rate}
	}
	plan := finishPlan(spec, &Plan{Placement: pl, Paths: paths, Unserved: unserved})
	return plan, Stats{Iterations: steps, Method: "continuous-greedy"}, nil
}

// accumGrad adds one request's contribution to the gradient of the
// expected caching gain: dG/dy[v_k][i] = lambda * sum_{m>k} delta_m *
// prod_{j<m, j!=k} (1 - y[v_j][i]), for every cacheable upstream node v_k.
func accumGrad(spec *placement.Spec, ir *iyRequest, y [][]float64, cacheable []bool, grad [][]float64) {
	K := len(ir.up)
	for k := 0; k < K; k++ {
		v := ir.up[k]
		if !cacheable[v] {
			continue
		}
		// prod tracks prod_{j<m, j!=k} (1 - y[v_j][i]) as m advances; a
		// pinned node fixes y=1 and kills the tail. Only m > k terms
		// count: caching at v_k saves exactly the fetch-cost suffix
		// beyond it.
		prod := 1.0
		var g float64
		for m := 1; m < K; m++ {
			if j := m - 1; j != k {
				prod *= 1 - yAt(spec, y, cacheable, ir.up[j], ir.req.Item)
			}
			if m > k {
				g += ir.delta[m] * prod
			}
			if prod <= 0 {
				break
			}
		}
		grad[v][ir.req.Item] += ir.rate * g
	}
}

// yAt reads the relaxed caching variable, treating pinned nodes as 1 and
// cache-less nodes as 0.
func yAt(spec *placement.Spec, y [][]float64, cacheable []bool, v graph.NodeID, i int) float64 {
	if spec.IsPinned(v) {
		return 1
	}
	if !cacheable[v] {
		return 0
	}
	return y[v][i]
}

// ascendKnapsack takes one continuous-greedy step at node v: the direction
// x* solving max <grad, x> subject to sum_i size_i*x_i <= cap, 0<=x<=1 is
// the fractional knapsack by gradient density; y moves 1/steps of the way,
// clamped to [0,1].
func ascendKnapsack(spec *placement.Spec, y, grad []float64, cap_ float64, steps int) {
	order := make([]int, 0, len(grad))
	for i, g := range grad {
		if g > 0 && spec.Size(i) <= cap_+capSlack {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := grad[order[a]] / spec.Size(order[a])
		db := grad[order[b]] / spec.Size(order[b])
		return da > db
	})
	room := cap_
	inv := 1 / float64(steps)
	for _, i := range order {
		if room <= capSlack {
			break
		}
		x := 1.0
		if sz := spec.Size(i); sz > room {
			x = room / sz
		}
		room -= x * spec.Size(i)
		y[i] += x * inv
		if y[i] > 1 {
			y[i] = 1
		}
	}
}
