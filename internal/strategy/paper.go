package strategy

import (
	"context"
	"fmt"
	"math"

	"jcr/internal/exact"
	"jcr/internal/graph"
	"jcr/internal/msufp"
	"jcr/internal/placement"
)

// capSlack absorbs floating-point residue when comparing item sizes and
// occupancies against cache capacities (mirrors the placement package).
const capSlack = 1e-9

func init() {
	register("alg1", "Algorithm 1: pipage-rounded placement (greedy under heterogeneous sizes) + nearest-replica serving",
		func(o Options) Strategy { return &Alg1{BestEffort: o.BestEffort} })
	register("alg2", "Algorithm 2: MSUFP demand rounding under binary cache capacities (full replicas + origin)",
		func(o Options) Strategy { return &Alg2{BestEffort: o.BestEffort, K: o.RoundingTrials} })
	register("exact", "brute-force IC-IR optimum (tiny instances only)",
		func(o Options) Strategy { return &Exact{} })
}

// Alg1 is the paper's placement-first pipeline behind the Strategy
// interface: Algorithm 1's pipage-rounded placement under the
// route-to-nearest-replica relaxation (the Section 5 greedy when item
// sizes are heterogeneous, exactly as the paper's file-level evaluation),
// then capacity-oblivious nearest-replica serving. Link congestion is
// whatever falls out — the infeasibility the paper demonstrates for
// capacity-blind schemes.
type Alg1 struct {
	// BestEffort declares requests with no reachable replica in
	// Plan.Unserved instead of failing on a partitioned network.
	BestEffort bool
}

// Name implements Strategy.
func (a *Alg1) Name() string { return "alg1" }

// Decide implements Strategy.
func (a *Alg1) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	if err := pollCtx(ctx, "alg1"); err != nil {
		return nil, Stats{}, err
	}
	spec := inst.Spec
	dist := inst.Distances()
	var pl *placement.Placement
	method := "alg1/pipage"
	if spec.ItemSize == nil {
		res, err := placement.Alg1(spec, dist)
		if err != nil {
			return nil, Stats{}, err
		}
		pl = res.Placement
	} else {
		method = "greedy"
		res, err := placement.Greedy(spec, dist)
		if err != nil {
			return nil, Stats{}, err
		}
		pl = res.Placement
	}
	if err := pollCtx(ctx, "alg1 serving"); err != nil {
		return nil, Stats{}, err
	}
	paths, unserved := rnrServe(spec, pl, dist)
	if len(unserved) > 0 && !a.BestEffort {
		return nil, Stats{}, fmt.Errorf("strategy: alg1: %d requests unreachable (set BestEffort to serve partially)", len(unserved))
	}
	return finishPlan(spec, &Plan{Placement: pl, Paths: paths, Unserved: unserved}), Stats{Iterations: 1, Method: method}, nil
}

// Alg2 is the paper's Algorithm 2 behind the Strategy interface, for the
// binary-capacity regime of Section 4.2: nodes either hold the full
// catalog or nothing. The placement fills every cache large enough for the
// whole catalog; routing reduces to MSUFP on the Lemma 4.5 virtual-source
// graph over those full replicas and is solved by Algorithm 2's demand
// rounding (optimal splittable flow, per-class Lemma 4.6 unsplitting). On
// specs whose caches cannot hold the catalog it degenerates to
// origin-only routing — Alg. 2's honest behavior outside its regime.
type Alg2 struct {
	// BestEffort declares requests with no reachable replica in
	// Plan.Unserved instead of failing on a partitioned network.
	BestEffort bool
	// K is the number of demand classes (Eq. 12); zero means 1000, the
	// paper's evaluation setting (K=2 reproduces Skutella [33]).
	K int
}

// Name implements Strategy.
func (a *Alg2) Name() string { return "alg2" }

// Decide implements Strategy.
func (a *Alg2) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	if err := pollCtx(ctx, "alg2"); err != nil {
		return nil, Stats{}, err
	}
	spec := inst.Spec
	var catalog float64
	for i := 0; i < spec.NumItems; i++ {
		catalog += spec.Size(i)
	}
	// Full replicas: pinned origins plus every cache that fits the whole
	// catalog (the binary c_v in {0, |C|} regime).
	pl := spec.NewPlacement()
	full := make([]bool, spec.G.NumNodes())
	for _, v := range spec.Pinned {
		full[v] = true
	}
	for v := 0; v < spec.G.NumNodes(); v++ {
		if full[v] || spec.CacheCap[v]+capSlack < catalog {
			continue
		}
		full[v] = true
		for i := 0; i < spec.NumItems; i++ {
			pl.Stores[v][i] = true
		}
	}
	var replicas []graph.NodeID
	for v, ok := range full {
		if ok {
			replicas = append(replicas, v)
		}
	}
	// Requests, minus the ones no replica reaches (best-effort only).
	reqs := spec.Requests()
	var unserved map[placement.Request]float64
	if a.BestEffort {
		dist := inst.Distances()
		kept := reqs[:0]
		for _, rq := range reqs {
			reachable := false
			for _, u := range replicas {
				if !math.IsInf(dist[u][rq.Node], 1) {
					reachable = true
					break
				}
			}
			if reachable {
				kept = append(kept, rq)
				continue
			}
			if unserved == nil {
				unserved = map[placement.Request]float64{}
			}
			unserved[rq] += spec.Rates[rq.Item][rq.Node]
		}
		reqs = kept
	}
	if len(reqs) == 0 {
		return finishPlan(spec, &Plan{Placement: pl, Unserved: unserved}), Stats{Iterations: 1, Method: "alg2"}, nil
	}
	// Lemma 4.5: one virtual source over all full replicas turns the
	// joint problem into a single-source MSUFP instance.
	aux := graph.NewAuxiliary(spec.G, [][]graph.NodeID{replicas})
	comms := make([]msufp.Commodity, len(reqs))
	for k, rq := range reqs {
		comms[k] = msufp.Commodity{Dest: rq.Node, Demand: spec.Rates[rq.Item][rq.Node]}
	}
	minst := &msufp.Instance{G: aux.G, Source: aux.VirtualSource[0], Commodities: comms}
	k := a.K
	if k <= 0 {
		k = 1000
	}
	if err := pollCtx(ctx, "alg2 routing"); err != nil {
		return nil, Stats{}, err
	}
	asgn, err := msufp.SolveAlg2(minst, k)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("strategy: alg2: %w", err)
	}
	paths := make([]placement.ServingPath, len(reqs))
	for idx, rq := range reqs {
		base, _ := aux.StripVirtual(asgn.Paths[idx])
		paths[idx] = placement.ServingPath{Req: rq, Path: base, Rate: spec.Rates[rq.Item][rq.Node]}
	}
	return finishPlan(spec, &Plan{Placement: pl, Paths: paths, Unserved: unserved}), Stats{Iterations: 1, Method: "alg2"}, nil
}

// Exact is the brute-force IC-IR reference solver behind the Strategy
// interface. It is exponential: Fits gates the arena to instances the
// enumeration can afford.
type Exact struct{}

// Name implements Strategy.
func (e *Exact) Name() string { return "exact" }

// Fits implements Sized.
func (e *Exact) Fits(inst Instance) bool { return exact.Fits(inst.Spec) }

// Decide implements Strategy.
func (e *Exact) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	res, err := exact.SolveICIRContext(ctx, inst.Spec)
	if err != nil {
		return nil, Stats{}, err
	}
	return finishPlan(inst.Spec, &Plan{Placement: res.Placement, Paths: res.Paths}), Stats{Iterations: 1, Method: "brute-force"}, nil
}
