package strategy

import (
	"context"

	"jcr/internal/graph"
	"jcr/internal/routing"
	"jcr/internal/topo"
)

func init() {
	register("decomposed", "partition-aware alternating optimizer: cells solve priced sub-LPs (DESIGN.md §10)",
		func(o Options) Strategy {
			return &Decomposed{
				Alternating: Alternating{
					Fractional:     o.Fractional,
					WarmStart:      o.WarmStart,
					BestEffort:     o.BestEffort,
					Rng:            o.Rng,
					Seed:           o.Seed,
					Workers:        o.Workers,
					MaxIters:       o.MaxIters,
					RoundingTrials: o.RoundingTrials,
					NoSolverReuse:  o.NoSolverReuse,
				},
			}
		})
}

// defaultCellTarget is the nodes-per-cell the partitioner aims for: about
// one Rocketfuel-sized block per cell, small enough that each cell LP stays
// comfortably under the monolithic size ceiling.
const defaultCellTarget = 24

// Decomposed is the partition-aware variant of the alternating optimizer
// for networks too large for the monolithic multicommodity LP: it cuts the
// graph into cells (topo.Partition — or the instance's intrinsic blocks
// when the graph is a topo.Composite), solves a small LP per cell, and
// coordinates them through Lagrangian prices on the gateway arcs
// (routing.DecomposeOptions, DESIGN.md §10). On instances at or below the
// routing layer's size threshold the decomposition stands down and the
// behavior is exactly Alternating's monolithic solve, so the strategy is
// safe to run at any scale. The node-to-cell assignment is derived once per
// graph (pointer and generation) and cached across Decide calls.
type Decomposed struct {
	Alternating
	// CellTarget is the partitioner's target cell size in nodes; zero
	// means defaultCellTarget.
	CellTarget int
	// MinVars overrides the routing layer's monolithic-fallback threshold
	// (flow-variable count); zero keeps the routing default.
	MinVars int

	assignG   *graph.Graph
	assignGen uint64
	assign    []int
}

// Name implements Strategy.
func (d *Decomposed) Name() string { return "decomposed" }

// Invalidate implements Warm.
func (d *Decomposed) Invalidate() {
	d.Alternating.Invalidate()
	d.assignG = nil
	d.assign = nil
}

// Decide implements Strategy: derive (or reuse) the cell assignment for the
// instance's graph, thread it into the routing options, and run the
// alternating loop.
func (d *Decomposed) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	d.Decompose = d.cellAssignment(inst.Spec.G)
	return d.Alternating.Decide(ctx, inst)
}

// cellAssignment returns the decomposition config for g, partitioning once
// per (graph pointer, generation). A graph the partitioner rejects (or one
// too small for 2 cells) returns nil, which keeps the monolithic path.
func (d *Decomposed) cellAssignment(g *graph.Graph) *routing.DecomposeOptions {
	if g == nil || g.NumNodes() < 2 {
		return nil
	}
	if d.assignG != g || d.assignGen != g.Gen() {
		target := d.CellTarget
		if target <= 0 {
			target = defaultCellTarget
		}
		k := (g.NumNodes() + target - 1) / target
		if k < 2 {
			k = 2
		}
		assign, err := topo.Partition(g, k)
		if err != nil {
			return nil
		}
		d.assignG = g
		d.assignGen = g.Gen()
		d.assign = assign
	}
	return &routing.DecomposeOptions{Assign: d.assign, MinVars: d.MinVars}
}
