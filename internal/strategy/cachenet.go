package strategy

import (
	"context"
	"fmt"
	"math/rand"

	"jcr/internal/placement"
	"jcr/internal/rng"
	"jcr/internal/routing"
)

func init() {
	register("cachenet-random", "CacheRateNetwork alternation: random feasible caches, optimal routing, keep the best restart",
		func(o Options) Strategy {
			return &CacheNetRandom{
				Restarts:       o.MaxIters,
				Seed:           o.Seed,
				Rng:            o.Rng,
				Workers:        o.Workers,
				BestEffort:     o.BestEffort,
				Fractional:     o.Fractional,
				RoundingTrials: o.RoundingTrials,
			}
		})
}

// CacheNetRandom is the CacheRateNetwork-style baseline (SNIPPETS.md #2,
// Random.py): alternate a *random* feasible cache configuration with an
// *optimal* routing for it, keeping the best of N restarts. Routing reuses
// this repo's Section 4.3.2 solver, so the baseline isolates exactly what
// optimized placement buys: its routing is as good as ours, its caches are
// guesses.
type CacheNetRandom struct {
	// Restarts is the number of random-cache draws; zero means 5.
	Restarts int
	// Seed seeds the placement draws and the routing's randomized
	// rounding; zero means rng.DefaultSeed.
	Seed int64
	// Rng, when non-nil, overrides Seed with a caller-owned generator
	// whose state advances across Decide calls.
	Rng *rand.Rand
	// Workers bounds the routing solver's worker pool.
	Workers int
	// BestEffort routes around failed links instead of failing.
	BestEffort bool
	// Fractional selects MMSFP routing; default MMUFP.
	Fractional bool
	// RoundingTrials is the routing layer's rounding draw count.
	RoundingTrials int
}

// Name implements Strategy.
func (c *CacheNetRandom) Name() string { return "cachenet-random" }

// Decide implements Strategy.
func (c *CacheNetRandom) Decide(ctx context.Context, inst Instance) (*Plan, Stats, error) {
	spec := inst.Spec
	r := c.Rng
	if r == nil {
		seed := c.Seed
		if seed == 0 {
			seed = rng.DefaultSeed
		}
		r = rng.New(seed)
	}
	restarts := c.Restarts
	if restarts <= 0 {
		restarts = 5
	}
	var best *Plan
	var bestMethod string
	var firstErr error
	for t := 0; t < restarts; t++ {
		if err := pollCtx(ctx, "cachenet-random restart"); err != nil {
			return nil, Stats{}, err
		}
		pl := randomFeasiblePlacement(spec, r)
		route, err := routing.RouteContext(ctx, spec, pl, routing.Options{
			Fractional:     c.Fractional,
			BestEffort:     c.BestEffort,
			Workers:        c.Workers,
			RoundingTrials: c.RoundingTrials,
			Rng:            r,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("strategy: cachenet-random restart %d: %w", t, err)
			}
			continue
		}
		cand := &Plan{
			Placement:      pl,
			Paths:          route.Paths,
			Unserved:       route.Unserved,
			Cost:           route.Cost,
			MaxUtilization: route.MaxUtilization,
		}
		if best == nil || betterPlan(spec, cand, best) {
			best = cand
			bestMethod = route.Method
		}
	}
	if best == nil {
		return nil, Stats{}, firstErr
	}
	return best, Stats{Iterations: restarts, Method: bestMethod}, nil
}

// randomFeasiblePlacement fills every non-pinned cache with a uniformly
// shuffled prefix of the catalog, greedily while items fit (the Random.py
// cache draw, adapted to heterogeneous sizes).
func randomFeasiblePlacement(s *placement.Spec, r *rand.Rand) *placement.Placement {
	pl := s.NewPlacement()
	for v := 0; v < s.G.NumNodes(); v++ {
		if s.IsPinned(v) || s.CacheCap[v] <= 0 {
			continue
		}
		room := s.CacheCap[v]
		for _, i := range r.Perm(s.NumItems) {
			if sz := s.Size(i); sz <= room+capSlack {
				pl.Stores[v][i] = true
				room -= sz
			}
		}
	}
	return pl
}
