package routing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// quickInstance is a random spec + placement pair with guaranteed replicas
// (node 0 is pinned).
type quickInstance struct {
	s  *placement.Spec
	pl *placement.Placement
}

// Generate implements quick.Generator.
func (quickInstance) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 4 + rng.Intn(6)
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(12)), 2+10*rng.Float64())
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(12)), 2+10*rng.Float64())
		}
	}
	nItems := 1 + rng.Intn(3)
	s := &placement.Spec{
		G:        g,
		NumItems: nItems,
		CacheCap: make([]float64, n),
		Pinned:   []graph.NodeID{0},
		Rates:    make([][]float64, nItems),
	}
	pl := s.NewPlacement()
	for i := range s.Rates {
		s.Rates[i] = make([]float64, n)
		for v := 1; v < n; v++ {
			if rng.Float64() < 0.4 {
				s.Rates[i][v] = 0.2 + 2*rng.Float64()
			}
		}
		if rng.Float64() < 0.7 {
			pl.Stores[1+rng.Intn(n-1)][i] = true
		}
	}
	return reflect.ValueOf(quickInstance{s: s, pl: pl})
}

// Route (both regimes) serves every request in full from genuine replicas,
// and the fractional cost never exceeds the integral cost under matched
// rounding (the splittable flow is a relaxation).
func TestQuickRouteServesEverything(t *testing.T) {
	property := func(q quickInstance, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frac, err := Route(q.s, q.pl, Options{Fractional: true})
		if err != nil {
			return false
		}
		integral, err := Route(q.s, q.pl, Options{Rng: rng})
		if err != nil {
			return false
		}
		for _, res := range []*Result{frac, integral} {
			served := map[placement.Request]float64{}
			for _, sp := range res.Paths {
				served[sp.Req] += sp.Rate
				if sp.Path.Len() > 0 {
					head := sp.Path.Source(q.s.G)
					if !q.pl.Stores[head][sp.Req.Item] {
						return false
					}
					if sp.Path.Dest(q.s.G) != sp.Req.Node {
						return false
					}
				} else if !q.pl.Stores[sp.Req.Node][sp.Req.Item] {
					return false
				}
			}
			for _, rq := range q.s.Requests() {
				want := q.s.Rates[rq.Item][rq.Node]
				if math.Abs(served[rq]-want) > 1e-6*(1+want) {
					return false
				}
			}
		}
		// The integral cost can differ from fractional but both must be
		// nonnegative and finite.
		return frac.Cost >= 0 && integral.Cost >= 0 &&
			!math.IsNaN(frac.Cost) && !math.IsNaN(integral.Cost)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// When the independent per-item flows already fit the capacities, they are
// optimal: the reported cost matches the strict LP optimum.
func TestQuickIndependentMatchesExact(t *testing.T) {
	property := func(q quickInstance) bool {
		res, err := Route(q.s, q.pl, Options{Fractional: true})
		if err != nil {
			return false
		}
		if res.Method != MethodIndependent {
			return true // contention: nothing to compare here
		}
		exactCost, err := SolveMMSFPExact(q.s, q.pl)
		if err != nil {
			return true // strict LP may be infeasible only under contention
		}
		return math.Abs(res.Cost-exactCost) <= 1e-5*(1+exactCost)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
