// Package routing solves the source-selection-and-routing subproblem of
// Section 4.3.2: given an integral content placement, route every request
// from some replica of its item at minimum total cost, subject (softly) to
// link capacities. Following Lemma 4.5's generalization, a virtual source
// per content item reduces the joint problem to a pure routing problem in
// an auxiliary graph:
//
//   - MMSFP (fractional routing) is solved exactly: first by independent
//     per-content min-cost flows (optimal whenever they happen to respect
//     the shared capacities), then by the coupled multicommodity LP when
//     small enough, and otherwise by a sequential residual-capacity
//     heuristic with a capacity-oblivious last resort (the paper's
//     evaluation likewise lets algorithms exceed capacity and measures the
//     resulting congestion).
//   - MMUFP (integral routing, NP-hard [26]) is approximated by randomized
//     rounding of the splittable path flows, the method the paper's
//     evaluation uses.
package routing

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"jcr/internal/core/lputil"
	"jcr/internal/flow"
	"jcr/internal/graph"
	"jcr/internal/lp"
	"jcr/internal/par"
	"jcr/internal/placement"
	"jcr/internal/rng"
)

// Method names reported in Result.Method.
const (
	MethodIndependent = "independent"
	MethodLP          = "lp"
	MethodSequential  = "sequential"
	MethodDecomposed  = "decomposed"
)

// Numerical tolerances shared across the routing solver, named in one
// place so the package's numerics are auditable (enforced by jcrlint
// tol-literal).
const (
	// utilTol is the margin for comparing max-utilization values when
	// ranking randomized-rounding trials.
	utilTol = 1e-12
	// capSlack absorbs floating-point residue when checking aggregated
	// flow against link capacities (both relatively and absolutely).
	capSlack = 1e-9
	// flowEps is the flow value below which an LP arc flow is treated as
	// zero when extracting per-commodity flows.
	flowEps = 1e-9
)

// Options control the routing solver.
type Options struct {
	// Fractional selects MMSFP output (possibly several partial-rate
	// paths per request); otherwise each request gets one full-rate path
	// (MMUFP via randomized rounding).
	Fractional bool
	// LPMaxVars caps the size (flow variables) of the exact
	// multicommodity LP; larger instances use the sequential heuristic.
	// Zero means the default.
	LPMaxVars int
	// Rng drives randomized rounding. Nil builds a generator from Seed,
	// so runs are bit-reproducible either way; see DESIGN.md ("Seeding").
	Rng *rand.Rand
	// Seed seeds the rounding generator when Rng is nil; zero means
	// rng.DefaultSeed.
	Seed int64
	// RoundingTrials is how many independent randomized roundings to
	// draw under integral routing, keeping the one with the least
	// congestion (ties broken by cost). Zero means the default of 5.
	RoundingTrials int
	// BestEffort serves what the network can reach instead of failing:
	// requests whose node cannot be reached from any replica of the item
	// (links down, network partitioned) are reported in Result.Unserved
	// rather than aborting the solve. Off by default, which preserves
	// the strict historical behavior of erroring on unreachable demand.
	BestEffort bool
	// Workers bounds the worker pool for the independent per-item
	// min-cost flows (the MMSFP fast path, where each item's flow is
	// computed on its own clone of the auxiliary graph). Zero or negative
	// means GOMAXPROCS. Results are merged in item order, so the output
	// is identical for any worker count (see internal/par).
	Workers int
	// Reuse, when non-nil, carries caches across RouteContext calls with
	// the same spec and graph: per-item demand sets, the Lemma 4.5
	// auxiliary graph, and the multicommodity LP skeleton with its
	// warm-start solver handle (see Reuse). Nil solves from scratch.
	Reuse *Reuse
	// Decompose, when non-nil, enables the partition-aware solve path for
	// instances too large for the monolithic LP: cells solve their own
	// small LPs coordinated through Lagrangian prices on the gateway arcs
	// (see decompose.go). Instances at or below Decompose.MinVars flow
	// variables keep the monolithic pipeline, and any decomposition
	// failure falls back to it as well.
	Decompose *DecomposeOptions
}

const defaultLPMaxVars = 6000

// itemDemand aggregates one content item's requests: which nodes want it
// and at what rate.
type itemDemand struct {
	item  int
	sinks map[graph.NodeID]float64
	// sorted lists the sink nodes ascending, computed once when the demand
	// set is built: the per-item flow loop and the path decomposition both
	// need a deterministic sink order, and re-sorting inside those loops
	// was pure per-call overhead (the demand sets repeat across rounds).
	sorted []graph.NodeID
	total  float64
}

// Result is a routing solution.
type Result struct {
	// Paths serve the requests; under fractional routing a request may
	// appear with several partial rates summing to its demand.
	Paths []placement.ServingPath
	// Cost, Loads and MaxUtilization are measured with
	// placement.EvaluateServing semantics.
	Cost           float64
	Loads          []float64
	MaxUtilization float64
	// Method records how the splittable flow was computed.
	Method string
	// Unserved maps requests the solution does not serve (no replica of
	// the item reachable from the requester) to their demand rate. Only
	// populated under Options.BestEffort; nil when everything is served.
	Unserved map[placement.Request]float64
	// Decomposed carries the partition-aware solve's duality certificate
	// when Method is MethodDecomposed; nil otherwise.
	Decomposed *DecomposeInfo
}

// Route solves the routing subproblem for the given placement.
func Route(s *placement.Spec, pl *placement.Placement, opts Options) (*Result, error) {
	return RouteContext(nil, s, pl, opts)
}

// RouteContext is Route with cooperative cancellation: ctx is threaded
// into the per-item min-cost flows, the multicommodity LP, and the
// randomized-rounding loop, so a caller-imposed deadline stops the solver
// mid-run. A nil ctx means no cancellation (identical to Route).
func RouteContext(ctx context.Context, s *placement.Spec, pl *placement.Placement, opts Options) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opts.LPMaxVars <= 0 {
		opts.LPMaxVars = defaultLPMaxVars
	}
	if opts.Rng == nil {
		seed := opts.Seed
		if seed == 0 {
			seed = rng.DefaultSeed
		}
		opts.Rng = rng.New(seed)
	}
	if opts.RoundingTrials <= 0 {
		opts.RoundingTrials = 5
	}
	// Active items and their replica sets. The per-item demand sets come
	// from the Reuse cache when one is threaded (nil-safe: computed fresh
	// otherwise); replica filtering always runs per call because the
	// placement changes between rounds.
	var active []itemDemand
	var groups [][]graph.NodeID
	unserved := map[placement.Request]float64{}
	for _, bd := range opts.Reuse.baseDemand(s) {
		i, sinks, total := bd.item, bd.sinks, bd.total
		reps := pl.Replicas(i)
		if len(reps) == 0 {
			if opts.BestEffort {
				for v, r := range sinks {
					unserved[placement.Request{Item: i, Node: v}] = r
				}
				continue
			}
			return nil, fmt.Errorf("routing: item %d has no replicas", i)
		}
		sorted := bd.sorted
		if opts.BestEffort {
			// Drop demand no replica can reach (links down, network
			// partitioned); the flow solvers would otherwise fail the
			// whole solve over it. The sink map is shared with the demand
			// cache, so filter a copy.
			sinks = cloneSinks(sinks)
			// Reachability is tie-independent, so the engine's cached
			// trees (replica sets repeat across rounds and hours) give
			// exactly the set a structural search would.
			reach := opts.Reuse.Engine().Reach(s.G, reps)
			// The cached sorted order keeps the floating-point subtraction
			// sequence (and hence total's last bits) independent of map
			// iteration; filtering preserves it, so nothing re-sorts. The
			// kept-slice copy is deferred until the first drop — in the
			// common all-reachable case the cached slice is shared as-is.
			var kept []graph.NodeID
			dropped := false
			for idx, v := range bd.sorted {
				if reach[v] {
					if dropped {
						kept = append(kept, v)
					}
					continue
				}
				if !dropped {
					kept = append(kept, bd.sorted[:idx]...)
					dropped = true
				}
				r := sinks[v]
				unserved[placement.Request{Item: i, Node: v}] = r
				delete(sinks, v)
				total -= r
			}
			if dropped {
				sorted = kept
			}
			if total <= 0 {
				continue
			}
		}
		active = append(active, itemDemand{item: i, sinks: sinks, sorted: sorted, total: total})
		groups = append(groups, reps)
	}
	if len(unserved) == 0 {
		unserved = nil
	}
	aux := opts.Reuse.auxiliary(s.G, groups)

	// Splittable per-item arc flows on the auxiliary graph.
	flows, method, dinfo, err := splittableFlows(ctx, aux, active, opts)
	if err != nil {
		return nil, err
	}

	// Decompose each item's flow into per-request path options.
	type reqOptions struct {
		rq   placement.Request
		list []flow.PathFlow
	}
	var all []reqOptions
	for k, ad := range active {
		vs := aux.VirtualSource[k]
		pfs, err := flow.Decompose(aux.G, flows[k], vs, ad.sinks)
		if err != nil {
			return nil, fmt.Errorf("routing: item %d (%s flows): %w", ad.item, method, err)
		}
		// Group path options by requester in first-appearance order: map
		// iteration order is randomized, and the order of `all` fixes both
		// the rounding Rng draw assignment and the cost summation order,
		// so it must be deterministic for bit-reproducible runs.
		byReq := map[graph.NodeID][]flow.PathFlow{}
		var sinkOrder []graph.NodeID
		for _, pf := range pfs {
			if _, seen := byReq[pf.Sink]; !seen {
				sinkOrder = append(sinkOrder, pf.Sink)
			}
			byReq[pf.Sink] = append(byReq[pf.Sink], pf)
		}
		for _, sink := range sinkOrder {
			all = append(all, reqOptions{
				rq:   placement.Request{Item: ad.item, Node: sink},
				list: byReq[sink],
			})
		}
	}
	if opts.Fractional {
		var paths []placement.ServingPath
		for _, ro := range all {
			for _, pf := range ro.list {
				base, _ := aux.StripVirtual(pf.Path)
				paths = append(paths, placement.ServingPath{Req: ro.rq, Path: base, Rate: pf.Amount})
			}
		}
		cost, loads, maxUtil := placement.EvaluateServing(s, paths, pl)
		return &Result{Paths: paths, Cost: cost, Loads: loads, MaxUtilization: maxUtil, Method: method, Unserved: unserved, Decomposed: dinfo}, nil
	}
	// Randomized rounding (MMUFP): draw each request's single path with
	// probability proportional to its flow; repeat and keep the draw
	// with the least congestion, then the least cost.
	demandOf := func(ro reqOptions) float64 {
		for _, ad := range active {
			if ad.item == ro.rq.Item {
				return ad.sinks[ro.rq.Node]
			}
		}
		return 0
	}
	var best *Result
	for trial := 0; trial < opts.RoundingTrials; trial++ {
		if ctx != nil && best != nil {
			// Keep the incumbent rounding instead of erroring: at least
			// one trial has completed, and a deadline should not discard
			// a usable solution.
			if ctx.Err() != nil {
				break
			}
		}
		paths := make([]placement.ServingPath, 0, len(all))
		for _, ro := range all {
			var total float64
			for _, pf := range ro.list {
				total += pf.Amount
			}
			chosen := ro.list[len(ro.list)-1]
			if len(ro.list) > 1 {
				pick := opts.Rng.Float64() * total
				for _, pf := range ro.list {
					if pick < pf.Amount {
						chosen = pf
						break
					}
					pick -= pf.Amount
				}
			}
			base, _ := aux.StripVirtual(chosen.Path)
			paths = append(paths, placement.ServingPath{Req: ro.rq, Path: base, Rate: demandOf(ro)})
		}
		cost, loads, maxUtil := placement.EvaluateServing(s, paths, pl)
		cand := &Result{Paths: paths, Cost: cost, Loads: loads, MaxUtilization: maxUtil, Method: method, Unserved: unserved, Decomposed: dinfo}
		if best == nil ||
			cand.MaxUtilization < best.MaxUtilization-utilTol ||
			(math.Abs(cand.MaxUtilization-best.MaxUtilization) <= utilTol && cand.Cost < best.Cost) {
			best = cand
		}
	}
	return best, nil
}

// SolveMMSFPExact computes the exact optimal fractional routing cost for a
// fixed placement via the coupled multicommodity LP, with no heuristic
// fallbacks: if the demands do not fit the link capacities it returns the
// LP's infeasibility error. Intended for reference bounds and tests; the
// evaluation-scale path is Route.
func SolveMMSFPExact(s *placement.Spec, pl *placement.Placement) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	var active []itemDemand
	var groups [][]graph.NodeID
	for i := 0; i < s.NumItems; i++ {
		sinks := map[graph.NodeID]float64{}
		var total float64
		for v, r := range s.Rates[i] {
			if r > 0 {
				sinks[v] += r
				total += r
			}
		}
		if total == 0 {
			continue
		}
		reps := pl.Replicas(i)
		if len(reps) == 0 {
			return 0, fmt.Errorf("routing: item %d has no replicas", i)
		}
		active = append(active, itemDemand{item: i, sinks: sinks, sorted: sortedSinks(sinks), total: total})
		groups = append(groups, reps)
	}
	if len(active) == 0 {
		return 0, nil
	}
	aux := graph.NewAuxiliary(s.G, groups)
	flows, err := multicommodityLP(nil, aux, active, nil)
	if err != nil {
		return 0, err
	}
	var cost float64
	for k := range flows {
		for e, f := range flows[k] {
			cost += f * aux.G.Arc(e).Cost
		}
	}
	return cost, nil
}

// reachableFrom marks the nodes reachable from any of the given roots
// along arc direction, ignoring capacities (the capacity-oblivious last
// resort can use any arc, so reachability is purely structural).
func reachableFrom(g *graph.Graph, roots []graph.NodeID) []bool {
	seen := make([]bool, g.NumNodes())
	var stack []graph.NodeID
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.Out(v) {
			if w := g.Arc(id).To; !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// splittableFlows computes per-item arc flows (indexed like aux.G arcs)
// satisfying each item's demands, minimizing total cost within shared real
// link capacities when possible. The *DecomposeInfo is non-nil exactly when
// the partition-aware path produced the flows.
func splittableFlows(ctx context.Context, aux *graph.Auxiliary, active []itemDemand, opts Options) ([][]float64, string, *DecomposeInfo, error) {
	g := aux.G
	// 1. Independent per-item min-cost flows, each respecting the link
	// capacities on its own. The items are independent here — each one
	// routes on its own clone of the auxiliary graph — so they fan out on
	// the bounded pool; flows[k] is written only by item k's worker and
	// the aggregation below runs sequentially in item order.
	flows := make([][]float64, len(active))
	if err := par.Do(ctx, opts.Workers, len(active), func(k int) error {
		f, err := itemMinCostFlow(ctx, aux, k, active[k], nil, false)
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return err
			}
			// Even this single item exceeds some capacity: route it
			// capacity-obliviously; the congestion check below will
			// send us to the coupled solvers.
			f, err = itemMinCostFlow(ctx, aux, k, active[k], nil, true)
			if err != nil {
				return err
			}
		}
		flows[k] = f
		return nil
	}); err != nil {
		return nil, "", nil, err
	}
	agg := make([]float64, g.NumArcs())
	independentOK := true
	for k := range active {
		for id, v := range flows[k] {
			agg[id] += v
		}
	}
	for id, v := range agg {
		if c := g.Arc(id).Cap; !math.IsInf(c, 1) && v > c*(1+capSlack)+capSlack {
			independentOK = false
			break
		}
	}
	if independentOK {
		return flows, MethodIndependent, nil, nil
	}
	// 2. Partition-aware decomposition for instances above its size
	// threshold: per-cell LPs coordinated through gateway prices, with the
	// monolithic pipeline below as the fallback (and differential oracle)
	// whenever the decomposition cannot certify a feasible routing.
	if dec := opts.Decompose; dec != nil && len(active)*g.NumArcs() > dec.minVars() {
		dFlows, info, derr := decomposedFlows(ctx, aux, active, opts)
		if derr == nil {
			return dFlows, MethodDecomposed, info, nil
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, "", nil, derr
		}
	}
	// 3. Exact multicommodity LP when small enough.
	if len(active)*g.NumArcs() <= opts.LPMaxVars {
		lpFlows, err := multicommodityLP(ctx, aux, active, opts.Reuse)
		if err == nil {
			return lpFlows, MethodLP, nil, nil
		}
		if ctx != nil && ctx.Err() != nil {
			return nil, "", nil, err
		}
		// Infeasible or numerically stuck: fall through to the
		// sequential heuristic, which always produces a solution.
	}
	// 4. Sequential residual-capacity routing, largest demand first,
	// with a capacity-oblivious fallback per item.
	order := make([]int, len(active))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return active[order[a]].total > active[order[b]].total })
	residual := make([]float64, g.NumArcs())
	for id := range residual {
		residual[id] = g.Arc(id).Cap
	}
	for _, k := range order {
		f, err := itemMinCostFlow(ctx, aux, k, active[k], residual, false)
		if err != nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, "", nil, err
			}
			// No room left: route capacity-obliviously and absorb
			// the congestion (measured by the caller).
			f, err = itemMinCostFlow(ctx, aux, k, active[k], nil, true)
			if err != nil {
				return nil, "", nil, err
			}
		}
		flows[k] = f
		for id, v := range f {
			residual[id] -= v
			if residual[id] < 0 {
				residual[id] = 0
			}
		}
	}
	return flows, MethodSequential, nil, nil
}

// itemMinCostFlow routes one item's demands from its virtual source via a
// super-sink min-cost flow. residual, if non-nil, overrides arc capacities;
// unlimited ignores capacities entirely (the capacity-oblivious last
// resort, whose congestion the caller measures).
// sortedSinks returns the sink nodes of a demand map in ascending node
// order, giving map-backed loops a deterministic iteration sequence.
func sortedSinks(sinks map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(sinks))
	for v := range sinks {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func itemMinCostFlow(ctx context.Context, aux *graph.Auxiliary, k int, ad itemDemand, residual []float64, unlimited bool) ([]float64, error) {
	gg := aux.G.Clone()
	switch {
	case unlimited:
		for id := 0; id < aux.G.NumArcs(); id++ {
			gg.SetArcCap(id, graph.Unlimited)
		}
	case residual != nil:
		for id := 0; id < aux.G.NumArcs(); id++ {
			if aux.IsVirtualArc(id) {
				continue
			}
			gg.SetArcCap(id, residual[id])
		}
	}
	super := gg.AddNode()
	var total float64
	// Sorted sink order: the demand arcs' IDs influence which of several
	// equal-cost flows the solver returns, so map iteration order must not
	// leak into the graph construction. The order is precomputed when the
	// demand set is built (see itemDemand.sorted) — this loop runs once per
	// item per solve and must not re-sort.
	for _, t := range ad.sorted {
		gg.AddArc(t, super, 0, ad.sinks[t])
		total += ad.sinks[t]
	}
	res, err := flow.MinCostFlowContext(ctx, gg, aux.VirtualSource[k], super, total)
	if err != nil {
		return nil, err
	}
	return res.Arc[:aux.G.NumArcs()], nil
}

// multicommodityLP solves the coupled MMSFP exactly: one flow variable per
// (item, arc), per-item conservation, shared capacity on real arcs. With a
// Reuse handle, a structurally repeated instance (same auxiliary graph, same
// active item count) mutates the cached skeleton's conservation right-hand
// sides in place and warm-starts from the previous optimal basis; otherwise
// the skeleton is rebuilt and retained for the next call.
func multicommodityLP(ctx context.Context, aux *graph.Auxiliary, active []itemDemand, reuse *Reuse) ([][]float64, error) {
	g := aux.G
	m := g.NumArcs()
	nc := len(active)
	p, cached := reuse.mcMutate(aux, active)
	if !cached {
		var rows [][]int
		var err error
		p, rows, err = buildMulticommodityLP(aux, active)
		if err != nil {
			return nil, err
		}
		reuse.mcStore(aux, p, rows)
	}
	sol, err := lputil.SolveWith(ctx, reuse.solver(), "routing: multicommodity LP", p)
	if err != nil {
		return nil, err
	}
	return lputil.ExtractGrid(sol.X, 0, nc, m, lputil.Floor(flowEps)), nil
}

// buildMulticommodityLP constructs the MMSFP skeleton from scratch and
// returns, alongside the problem, the conservation-row layout (rows[k][v] is
// the row of item k's conservation at node v, -1 when the node has no
// incident arcs) that Reuse.mcMutate needs for in-place RHS mutation.
func buildMulticommodityLP(aux *graph.Auxiliary, active []itemDemand) (*lp.Problem, [][]int, error) {
	g := aux.G
	m := g.NumArcs()
	nc := len(active)
	p := lputil.NewProblem(nc * m)
	fIdx := func(k, e int) int { return k*m + e }
	for k := range active {
		for e := 0; e < m; e++ {
			p.SetObjectiveCoeff(fIdx(k, e), g.Arc(e).Cost)
		}
	}
	rows := make([][]int, nc)
	// Conservation per item and node. Self-loop arcs appear in both Out
	// and In, which the row builder coalesces to a zero coefficient.
	row := lp.NewRowBuilder(p)
	nrows := 0
	for k, ad := range active {
		vs := aux.VirtualSource[k]
		rows[k] = make([]int, g.NumNodes())
		for v := 0; v < g.NumNodes(); v++ {
			rows[k][v] = -1
			for _, e := range g.Out(v) {
				row.Add(fIdx(k, e), 1)
			}
			for _, e := range g.In(v) {
				row.Add(fIdx(k, e), -1)
			}
			supply := 0.0
			if v == vs {
				supply = ad.total
			} else if d, isSink := ad.sinks[v]; isSink {
				supply = -d
			}
			if row.Len() == 0 {
				if supply != 0 {
					return nil, nil, fmt.Errorf("routing: node %d has demand but no incident arcs", v)
				}
				continue
			}
			// Other items' virtual sources are isolated from item
			// k's flow: their virtual arcs stay unused because no
			// flow can enter them (in-degree 0 for vs).
			if err := row.Constrain(lp.EQ, supply); err != nil {
				return nil, nil, fmt.Errorf("routing: multicommodity LP: %w", err)
			}
			rows[k][v] = nrows
			nrows++
		}
	}
	// Shared capacities on real arcs.
	for e := 0; e < m; e++ {
		c := g.Arc(e).Cap
		if math.IsInf(c, 1) {
			continue
		}
		for k := 0; k < nc; k++ {
			row.Add(fIdx(k, e), 1)
		}
		if err := row.Constrain(lp.LE, c); err != nil {
			return nil, nil, fmt.Errorf("routing: multicommodity LP: %w", err)
		}
	}
	return p, rows, nil
}
