package routing

import (
	"math"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// reuseSpec: line 0-1-2-3 with tight cheap arcs and ample expensive
// parallels, origin 0 pinned, three items requested at nodes 1..3, one
// cache slot at nodes 1 and 2 so placements can move replicas around.
func reuseSpec() *placement.Spec {
	g := graph.New(4)
	for v := 0; v < 3; v++ {
		g.AddEdge(v, v+1, 1, 1.5)
		g.AddEdge(v, v+1, 5, 100)
	}
	return &placement.Spec{
		G:        g,
		NumItems: 3,
		CacheCap: []float64{0, 1, 1, 0},
		Pinned:   []graph.NodeID{0},
		Rates: [][]float64{
			{0, 1, 1, 1},
			{0, 1, 0, 1},
			{0, 0, 1, 1},
		},
	}
}

func samePaths(a, b []placement.ServingPath) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Req != b[i].Req || a[i].Rate != b[i].Rate || len(a[i].Path.Arcs) != len(b[i].Path.Arcs) {
			return false
		}
		for k := range a[i].Path.Arcs {
			if a[i].Path.Arcs[k] != b[i].Path.Arcs[k] {
				return false
			}
		}
	}
	return true
}

// TestReuseMatchesFresh routes a sequence of placements twice — once through
// a shared Reuse handle, once from scratch — and requires identical results
// every round: the caches may only change how much work a solve takes. The
// sequence revisits placements so the auxiliary-graph and LP-skeleton caches
// actually hit (asserted via the solver counters).
func TestReuseMatchesFresh(t *testing.T) {
	s := reuseSpec()
	reuse := NewReuse()
	// Placement sequence: empty, item 0 at node 1, then converged (the
	// alternating loop's regime: a couple of moving rounds, then repeats —
	// the caches are depth-1, so only consecutive repeats can hit).
	mk := func(round int) *placement.Placement {
		pl := s.NewPlacement()
		if round > 2 {
			round = 2
		}
		switch round {
		case 1:
			pl.Stores[1][0] = true
		case 2:
			pl.Stores[1][0] = true
			pl.Stores[2][1] = true
		}
		return pl
	}
	sawLP := false
	for round := 0; round < 9; round++ {
		pl := mk(round)
		opts := Options{Fractional: true}
		fresh, err := Route(s, pl, opts)
		if err != nil {
			t.Fatalf("round %d fresh: %v", round, err)
		}
		opts.Reuse = reuse
		warm, err := Route(s, pl, opts)
		if err != nil {
			t.Fatalf("round %d reused: %v", round, err)
		}
		if warm.Method != fresh.Method {
			t.Fatalf("round %d: method %q with reuse, %q fresh", round, warm.Method, fresh.Method)
		}
		if warm.Method == MethodLP {
			sawLP = true
		}
		if math.Abs(warm.Cost-fresh.Cost) > 1e-9 {
			t.Fatalf("round %d: cost %v with reuse, %v fresh", round, warm.Cost, fresh.Cost)
		}
		if !samePaths(warm.Paths, fresh.Paths) {
			t.Fatalf("round %d: paths diverge between reused and fresh solves", round)
		}
	}
	stats := reuse.LPStats()
	if sawLP && stats.WarmHits == 0 {
		t.Errorf("LP path ran but never warm-started: %+v", stats)
	}
}

// TestReuseGraphMutationInvalidates flips an arc capacity in place (the
// fault-injection pattern) between two reused solves: the mutation
// generation must miss the auxiliary-graph and LP caches, so the second
// solve sees the degraded link instead of stale cached capacities.
func TestReuseGraphMutationInvalidates(t *testing.T) {
	s := twoItemSpec(10)
	pl := s.NewPlacement()
	reuse := NewReuse()
	opts := Options{Fractional: true, Reuse: reuse}
	res, err := Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodIndependent || math.Abs(res.Cost-2) > 1e-9 {
		t.Fatalf("ample capacity: method %q cost %v, want independent cost 2", res.Method, res.Cost)
	}
	// Fault: the cheap link degrades to capacity 1 (arc 0 in twoItemSpec).
	s.G.SetArcCap(0, 1)
	res, err = Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodLP {
		t.Errorf("after fault: method %q, want lp (stale cache?)", res.Method)
	}
	if math.Abs(res.Cost-6) > 1e-6 {
		t.Errorf("after fault: cost %v, want 6 (1 cheap + 1 expensive)", res.Cost)
	}
}

// TestReuseBestEffortKeepsCacheIntact exercises the best-effort filter,
// which deletes unreachable sinks: with a shared demand cache the filter
// must operate on a copy, so a later solve on a repaired graph serves the
// full demand again.
func TestReuseBestEffortKeepsCacheIntact(t *testing.T) {
	// Line 0-1 2: node 2 requests item 0 but is disconnected until repair.
	g := graph.New(3)
	g.AddArc(0, 1, 1, 10)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 0, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 1, 1}},
	}
	pl := s.NewPlacement()
	reuse := NewReuse()
	opts := Options{Fractional: true, BestEffort: true, Reuse: reuse}
	res, err := Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unserved) != 1 {
		t.Fatalf("unserved = %v, want exactly node 2's request", res.Unserved)
	}
	// Repair: connect node 2. The demand cache (keyed by the same Spec) must
	// still hold node 2's rate.
	g.AddArc(1, 2, 1, 10)
	res, err = Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unserved) != 0 {
		t.Errorf("after repair: unserved = %v, want none", res.Unserved)
	}
	if math.Abs(res.Cost-3) > 1e-9 { // node1: 1 hop, node2: 2 hops
		t.Errorf("after repair: cost = %v, want 3", res.Cost)
	}
}
