package routing

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// twoItemSpec: node 0 is the pinned origin; node 1 requests items 0 and 1.
// Two parallel links 0->1: cheap (cost 1) with capacity cap, expensive
// (cost 5) with ample capacity.
func twoItemSpec(cheapCap float64) *placement.Spec {
	g := graph.New(2)
	g.AddArc(0, 1, 1, cheapCap)
	g.AddArc(0, 1, 5, 100)
	s := &placement.Spec{
		G:        g,
		NumItems: 2,
		CacheCap: []float64{0, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 1}, {0, 1}},
	}
	return s
}

func TestRouteIndependent(t *testing.T) {
	s := twoItemSpec(10) // plenty of cheap capacity
	pl := s.NewPlacement()
	res, err := Route(s, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodIndependent {
		t.Errorf("method = %q, want independent", res.Method)
	}
	if math.Abs(res.Cost-2) > 1e-9 { // both items on the cheap link
		t.Errorf("cost = %v, want 2", res.Cost)
	}
	if res.MaxUtilization > 1+1e-9 {
		t.Errorf("congestion %v > 1 with ample capacity", res.MaxUtilization)
	}
}

func TestRouteLPUnderContention(t *testing.T) {
	s := twoItemSpec(1) // cheap link fits only one item's unit of flow
	pl := s.NewPlacement()
	res, err := Route(s, pl, Options{Fractional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodLP {
		t.Errorf("method = %q, want lp", res.Method)
	}
	// Optimal split: 1 unit cheap (cost 1) + 1 unit expensive (cost 5).
	if math.Abs(res.Cost-6) > 1e-6 {
		t.Errorf("cost = %v, want 6", res.Cost)
	}
	if res.MaxUtilization > 1+1e-6 {
		t.Errorf("LP solution violates capacity: %v", res.MaxUtilization)
	}
	// Fractional rates per request sum to the demand.
	perReq := map[placement.Request]float64{}
	for _, sp := range res.Paths {
		perReq[sp.Req] += sp.Rate
	}
	for rq, sum := range perReq {
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("request %+v served %v, want 1", rq, sum)
		}
	}
}

func TestRouteSequentialFallback(t *testing.T) {
	s := twoItemSpec(1)
	pl := s.NewPlacement()
	res, err := Route(s, pl, Options{LPMaxVars: 1}) // forbid the LP
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodSequential {
		t.Errorf("method = %q, want sequential", res.Method)
	}
	// Sequential should also find the capacity-respecting split here.
	if math.Abs(res.Cost-6) > 1e-6 {
		t.Errorf("cost = %v, want 6", res.Cost)
	}
}

func TestRouteIntegralOnePathPerRequest(t *testing.T) {
	s := twoItemSpec(1)
	pl := s.NewPlacement()
	res, err := Route(s, pl, Options{Rng: rand.New(rand.NewSource(9))})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[placement.Request]int{}
	for _, sp := range res.Paths {
		seen[sp.Req]++
		if math.Abs(sp.Rate-1) > 1e-9 {
			t.Errorf("integral path rate = %v, want full demand 1", sp.Rate)
		}
		if err := sp.Path.Validate(s.G, 0, sp.Req.Node); err != nil {
			t.Errorf("bad path for %+v: %v", sp.Req, err)
		}
	}
	for rq, n := range seen {
		if n != 1 {
			t.Errorf("request %+v has %d paths, want 1", rq, n)
		}
	}
	if len(seen) != 2 {
		t.Errorf("%d requests served, want 2", len(seen))
	}
}

func TestRouteUsesNearestReplica(t *testing.T) {
	// Line 0 - 1 - 2; origin 0 pinned, replica of item 0 at node 1,
	// requester at node 2: should be served from node 1, not the origin.
	g := graph.New(3)
	g.AddEdge(0, 1, 10, 100)
	g.AddEdge(1, 2, 1, 100)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 1, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 0, 2}},
	}
	pl := s.NewPlacement()
	pl.Stores[1][0] = true
	res, err := Route(s, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-2*1) > 1e-9 {
		t.Errorf("cost = %v, want 2 (served from node 1)", res.Cost)
	}
}

func TestRouteSelfServe(t *testing.T) {
	// Requester caches the item itself: zero cost, empty path.
	g := graph.New(2)
	g.AddEdge(0, 1, 3, 100)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 1},
		Pinned:   []graph.NodeID{0},
		Rates:    [][]float64{{0, 5}},
	}
	pl := s.NewPlacement()
	pl.Stores[1][0] = true
	res, err := Route(s, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %v, want 0", res.Cost)
	}
}

func TestRouteNoReplicaError(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1, 10)
	s := &placement.Spec{
		G:        g,
		NumItems: 1,
		CacheCap: []float64{0, 0},
		Rates:    [][]float64{{0, 1}},
	}
	pl := s.NewPlacement() // nothing pinned, nothing cached
	if _, err := Route(s, pl, Options{}); err == nil {
		t.Error("expected error for item with no replicas")
	}
}

func TestRouteRandomizedConsistency(t *testing.T) {
	// Integral routing over random instances: each request gets exactly
	// one valid path starting at a replica of its item.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(5)
		g := graph.New(n)
		for v := 0; v+1 < n; v++ {
			g.AddEdge(v, v+1, float64(1+rng.Intn(9)), 3+10*rng.Float64())
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(9)), 3+10*rng.Float64())
			}
		}
		nItems := 2 + rng.Intn(3)
		s := &placement.Spec{
			G:        g,
			NumItems: nItems,
			CacheCap: make([]float64, n),
			Pinned:   []graph.NodeID{0},
			Rates:    make([][]float64, nItems),
		}
		pl := s.NewPlacement()
		for i := range s.Rates {
			s.Rates[i] = make([]float64, n)
			for v := 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					s.Rates[i][v] = 0.5 + 2*rng.Float64()
				}
			}
			// A random extra replica.
			v := 1 + rng.Intn(n-1)
			pl.Stores[v][i] = true
		}
		res, err := Route(s, pl, Options{Rng: rng})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		count := map[placement.Request]int{}
		for _, sp := range res.Paths {
			count[sp.Req]++
			if sp.Path.Len() == 0 {
				// Self-served: requester must hold a replica.
				if !pl.Stores[sp.Req.Node][sp.Req.Item] {
					t.Fatalf("trial %d: empty path but no local replica for %+v", trial, sp.Req)
				}
				continue
			}
			head := sp.Path.Source(s.G)
			if !pl.Stores[head][sp.Req.Item] {
				t.Fatalf("trial %d: path for %+v starts at %d, which lacks the item", trial, sp.Req, head)
			}
			if sp.Path.Dest(s.G) != sp.Req.Node {
				t.Fatalf("trial %d: path for %+v ends at %d", trial, sp.Req, sp.Path.Dest(s.G))
			}
		}
		if len(count) != len(s.Requests()) {
			t.Fatalf("trial %d: served %d of %d requests", trial, len(count), len(s.Requests()))
		}
	}
}

// The engine-backed reach filter must mark exactly the nodes the
// structural search does — on intact graphs and after link removals,
// through both a threaded Reuse handle and the nil fallback.
func TestEngineReachMatchesStructuralSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(10)
		g := graph.New(n)
		for e := 0; e < n+rng.Intn(2*n); e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddArc(u, v, float64(1+rng.Intn(3)), 1)
			}
		}
		roots := []graph.NodeID{rng.Intn(n), rng.Intn(n)}
		want := reachableFrom(g, roots)
		reuse := NewReuse()
		for pass := 0; pass < 2; pass++ { // second pass is all cache hits
			if got := reuse.Engine().Reach(g, roots); !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d pass %d: engine reach differs from structural search", trial, pass)
			}
		}
		var nilReuse *Reuse
		if got := nilReuse.Engine().Reach(g, roots); !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: nil-handle reach differs from structural search", trial)
		}
	}
}
