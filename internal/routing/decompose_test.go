package routing

import (
	"math"
	"math/rand"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// diffInstance is one randomized differential-suite instance: a multi-cell
// network whose cell assignment is known by construction (rings joined by a
// few bridge links), a random catalog with extra replicas scattered around,
// and random demand.
type diffInstance struct {
	spec   *placement.Spec
	pl     *placement.Placement
	assign []int
}

// randomCellInstance builds a connected k-cell network: each cell is a
// bidirectional ring with random chords, consecutive cells are joined by
// bridge links. Finite capacities are scaled off the total demand so most
// instances are feasible for both the monolithic LP and the decomposition's
// strict recovery, while staying tight enough to exercise the coupling.
func randomCellInstance(r *rand.Rand) *diffInstance {
	k := 2 + r.Intn(2)     // 2-3 cells
	cellN := 5 + r.Intn(3) // 5-7 nodes per cell
	items := 2 + r.Intn(3) // 2-4 items
	n := k * cellN
	g := graph.New(n)
	assign := make([]int, n)
	cost := func() float64 { return 1 + 9*r.Float64() }
	for c := 0; c < k; c++ {
		base := c * cellN
		for v := 0; v < cellN; v++ {
			assign[base+v] = c
			w := (v + 1) % cellN
			g.AddArc(base+v, base+w, cost(), graph.Unlimited)
			g.AddArc(base+w, base+v, cost(), graph.Unlimited)
		}
		for chord := 0; chord < 2; chord++ {
			a, b := r.Intn(cellN), r.Intn(cellN)
			if a != b {
				g.AddArc(base+a, base+b, cost(), graph.Unlimited)
			}
		}
	}
	for c := 0; c+1 < k; c++ {
		bridges := 1 + r.Intn(2)
		for bi := 0; bi < bridges; bi++ {
			a := c*cellN + r.Intn(cellN)
			b := (c+1)*cellN + r.Intn(cellN)
			g.AddArc(a, b, cost(), graph.Unlimited)
			g.AddArc(b, a, cost(), graph.Unlimited)
		}
	}
	rates := make([][]float64, items)
	var total float64
	for i := range rates {
		rates[i] = make([]float64, n)
		for req := 0; req < 2+r.Intn(4); req++ {
			v := r.Intn(n)
			d := 1 + 4*r.Float64()
			rates[i][v] += d
			total += d
		}
	}
	// Cap a random subset of arcs. Each finite cap alone admits the whole
	// demand (keeping greedy recovery and the LP feasible) but their
	// interaction still binds when several items share a cheap corridor.
	for id := 0; id < g.NumArcs(); id++ {
		if r.Float64() < 0.4 {
			g.SetArcCap(id, total*(0.8+0.6*r.Float64()))
		}
	}
	s := &placement.Spec{
		G:        g,
		NumItems: items,
		CacheCap: make([]float64, n),
		Pinned:   []graph.NodeID{0},
		Rates:    rates,
	}
	pl := s.NewPlacement()
	for i := 0; i < items; i++ {
		for extra := 0; extra < r.Intn(3); extra++ {
			pl.Stores[r.Intn(n)][i] = true
		}
	}
	return &diffInstance{spec: s, pl: pl, assign: assign}
}

// TestDecomposedDifferential is the randomized differential suite: on every
// instance where both solvers run, the monolithic MMSFP optimum must lie in
// the decomposition's reported interval [LowerBound, PrimalCost] — which
// also bounds |PrimalCost - exact| by the reported Gap. At least 200
// instances must qualify.
func TestDecomposedDifferential(t *testing.T) {
	const (
		instances = 230
		needBoth  = 200
	)
	qualified := 0
	for seed := 0; seed < instances; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		inst := randomCellInstance(r)
		exact, exactErr := SolveMMSFPExact(inst.spec, inst.pl)
		info, decErr := SolveMMSFPDecomposed(nil, inst.spec, inst.pl,
			DecomposeOptions{Assign: inst.assign, MaxIters: 8}, 2)
		if exactErr != nil || decErr != nil {
			// Infeasible draws (or recovery failures) are allowed — the
			// production path falls back to the monolithic pipeline — but
			// they must not eat the suite.
			continue
		}
		qualified++
		tol := 1e-6 * (1 + math.Abs(exact))
		if exact < info.LowerBound-tol {
			t.Errorf("seed %d: exact %v below reported lower bound %v", seed, exact, info.LowerBound)
		}
		if exact > info.PrimalCost+tol {
			t.Errorf("seed %d: exact %v above decomposed primal %v (primal must be feasible, hence >= OPT)",
				seed, exact, info.PrimalCost)
		}
		if math.Abs(info.Gap-(info.PrimalCost-info.LowerBound)) > tol {
			t.Errorf("seed %d: Gap %v inconsistent with primal %v - dual %v", seed, info.Gap, info.PrimalCost, info.LowerBound)
		}
		if info.PrimalCost-exact > info.Gap+tol {
			t.Errorf("seed %d: decomposed cost %v deviates from exact %v by more than the reported gap %v",
				seed, info.PrimalCost, exact, info.Gap)
		}
		if info.Cells < 2 || info.Iterations < 1 {
			t.Errorf("seed %d: implausible info %+v", seed, info)
		}
	}
	if qualified < needBoth {
		t.Fatalf("only %d instances qualified for the differential comparison, need %d", qualified, needBoth)
	}
}

// decomposedRouteSpec returns a deterministic two-cell bottleneck instance:
// every item is pinned only at the origin in cell 0, all demand sits in
// cell 1, and the cells are joined by a cheap bridge (capacity 4) and an
// expensive one (capacity 12). Each item's demand of 3 fits the cheap
// bridge alone, so the independent fast path routes all 12 units onto it
// and overshoots — forcing the coupled solvers — while the total bridge
// capacity still admits the full demand, so both the monolithic LP and the
// decomposition's strict recovery stay feasible.
func decomposedRouteSpec(t *testing.T) (*placement.Spec, *placement.Placement, []int) {
	t.Helper()
	const cellN = 5
	g := graph.New(2 * cellN)
	assign := make([]int, 2*cellN)
	for c := 0; c < 2; c++ {
		base := c * cellN
		for v := 0; v < cellN; v++ {
			assign[base+v] = c
			w := (v + 1) % cellN
			g.AddArc(base+v, base+w, 1, graph.Unlimited)
			g.AddArc(base+w, base+v, 1, graph.Unlimited)
		}
	}
	g.AddArc(1, cellN+1, 2, 4)  // cheap bridge
	g.AddArc(3, cellN+3, 6, 12) // expensive bridge
	const items = 4
	rates := make([][]float64, items)
	for i := range rates {
		rates[i] = make([]float64, 2*cellN)
		rates[i][cellN+i] = 3
	}
	s := &placement.Spec{
		G:        g,
		NumItems: items,
		CacheCap: make([]float64, 2*cellN),
		Pinned:   []graph.NodeID{0},
		Rates:    rates,
	}
	return s, s.NewPlacement(), assign
}

func TestRouteDecomposed(t *testing.T) {
	s, pl, assign := decomposedRouteSpec(t)
	res, err := Route(s, pl, Options{
		Fractional: true,
		Decompose:  &DecomposeOptions{Assign: assign, MinVars: 1, MaxIters: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != MethodDecomposed {
		t.Fatalf("method = %q, want decomposed", res.Method)
	}
	if res.Decomposed == nil {
		t.Fatal("decomposed result carries no DecomposeInfo")
	}
	if res.Decomposed.Gap < 0 {
		t.Errorf("negative duality gap %v", res.Decomposed.Gap)
	}
	// The strict recovery never oversubscribes a link.
	if res.MaxUtilization > 1+1e-6 {
		t.Errorf("decomposed routing oversubscribes: max utilization %v", res.MaxUtilization)
	}
	// Demands are fully served.
	perReq := map[placement.Request]float64{}
	for _, sp := range res.Paths {
		perReq[sp.Req] += sp.Rate
	}
	for i, row := range s.Rates {
		for v, d := range row {
			if d <= 0 {
				continue
			}
			if got := perReq[placement.Request{Item: i, Node: v}]; math.Abs(got-d) > 1e-6*(1+d) {
				t.Errorf("request (%d,%d) served %v of %v", i, v, got, d)
			}
		}
	}
}

// TestRouteDecomposedWorkersIdentical pins worker-count independence: the
// cells solve in parallel but merge by index, so 1 worker and 4 workers
// must produce bit-identical results.
func TestRouteDecomposedWorkersIdentical(t *testing.T) {
	run := func(workers int) *Result {
		s, pl, assign := decomposedRouteSpec(t)
		res, err := Route(s, pl, Options{
			Fractional: true,
			Workers:    workers,
			Decompose:  &DecomposeOptions{Assign: assign, MinVars: 1, MaxIters: 6},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if a.Cost != b.Cost || a.Method != b.Method {
		t.Fatalf("workers 1 vs 4 diverge: cost %v/%v method %s/%s", a.Cost, b.Cost, a.Method, b.Method)
	}
	if *a.Decomposed != *b.Decomposed {
		t.Fatalf("workers 1 vs 4 diverge in info: %+v vs %+v", a.Decomposed, b.Decomposed)
	}
	if len(a.Paths) != len(b.Paths) {
		t.Fatalf("workers 1 vs 4 produce %d vs %d paths", len(a.Paths), len(b.Paths))
	}
	for i := range a.Paths {
		if a.Paths[i].Rate != b.Paths[i].Rate || a.Paths[i].Req != b.Paths[i].Req {
			t.Fatalf("path %d diverges: %+v vs %+v", i, a.Paths[i], b.Paths[i])
		}
	}
}

// TestRouteDecomposedReuse pins the decomposition cache: a second solve on
// the same instance keeps the cell skeletons (mutating demands in place)
// instead of rebuilding them.
func TestRouteDecomposedReuse(t *testing.T) {
	s, pl, assign := decomposedRouteSpec(t)
	reuse := NewReuse()
	opts := Options{
		Fractional: true,
		Reuse:      reuse,
		Decompose:  &DecomposeOptions{Assign: assign, MinVars: 1, MaxIters: 6},
	}
	first, err := Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	progs := reuse.dcProgs
	if progs == nil {
		t.Fatal("decomposition cache empty after a decomposed solve")
	}
	second, err := Route(s, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if &reuse.dcProgs[0] != &progs[0] {
		t.Error("cell skeletons rebuilt on a structurally identical re-solve")
	}
	if first.Cost != second.Cost || *first.Decomposed != *second.Decomposed {
		t.Errorf("reuse changed the answer: %v/%+v vs %v/%+v",
			first.Cost, first.Decomposed, second.Cost, second.Decomposed)
	}
}

// TestRouteDecomposedFallback pins the fail-open contract: a broken
// decomposition config (assignment for the wrong graph) must not fail the
// solve — the monolithic pipeline answers instead.
func TestRouteDecomposedFallback(t *testing.T) {
	s, pl, _ := decomposedRouteSpec(t)
	res, err := Route(s, pl, Options{
		Fractional: true,
		Decompose:  &DecomposeOptions{Assign: []int{0, 1}, MinVars: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method == MethodDecomposed {
		t.Fatalf("method = %q despite a broken assignment", res.Method)
	}
	if res.Decomposed != nil {
		t.Error("fallback result still carries DecomposeInfo")
	}
}

// TestRouteDecomposedBelowThreshold pins the size gate: small instances
// keep the monolithic pipeline even with Decompose configured.
func TestRouteDecomposedBelowThreshold(t *testing.T) {
	s := twoItemSpec(1)
	pl := s.NewPlacement()
	res, err := Route(s, pl, Options{
		Fractional: true,
		Decompose:  &DecomposeOptions{Assign: []int{0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method == MethodDecomposed {
		t.Fatalf("tiny instance decomposed (method %q); it should use the monolithic LP", res.Method)
	}
}

// TestBaseDemandSortedHoisted pins the sorted-sinks hoist: the cached
// demand sets carry their sink order, and the warm path neither re-sorts
// nor allocates.
func TestBaseDemandSortedHoisted(t *testing.T) {
	s, _, _ := decomposedRouteSpec(t)
	reuse := NewReuse()
	cold := reuse.baseDemand(s)
	for _, bd := range cold {
		if len(bd.sorted) != len(bd.sinks) {
			t.Fatalf("item %d: sorted order covers %d of %d sinks", bd.item, len(bd.sorted), len(bd.sinks))
		}
		for i := 1; i < len(bd.sorted); i++ {
			if bd.sorted[i-1] >= bd.sorted[i] {
				t.Fatalf("item %d: sink order not strictly ascending: %v", bd.item, bd.sorted)
			}
		}
	}
	if allocs := testing.AllocsPerRun(50, func() {
		warm := reuse.baseDemand(s)
		if &warm[0] != &cold[0] {
			t.Fatal("warm baseDemand rebuilt the demand sets")
		}
	}); allocs > 0 {
		t.Errorf("warm baseDemand allocates %.0f objects per call, want 0", allocs)
	}
}

// BenchmarkRouteWarmReuse guards the per-solve allocation profile of the
// warm path (demand sets, auxiliary graph and LP skeletons all cached):
// regressions that push per-attachment work back into the per-item loop
// show up directly in allocs/op.
func BenchmarkRouteWarmReuse(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	inst := randomCellInstance(r)
	reuse := NewReuse()
	opts := Options{Fractional: true, Reuse: reuse}
	if _, err := Route(inst.spec, inst.pl, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(inst.spec, inst.pl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteDecomposed measures the partition-aware path end to end
// (cell solves warm across iterations and calls).
func BenchmarkRouteDecomposed(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	inst := randomCellInstance(r)
	reuse := NewReuse()
	opts := Options{
		Fractional: true,
		Reuse:      reuse,
		Decompose:  &DecomposeOptions{Assign: inst.assign, MinVars: 1, MaxIters: 6},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Route(inst.spec, inst.pl, opts); err != nil {
			b.Fatal(err)
		}
	}
}
