package routing

import (
	"jcr/internal/graph"
	"jcr/internal/lp"
	"jcr/internal/placement"
)

// Reuse carries routing state worth keeping across RouteContext calls on the
// same instance — the alternating loop re-routes after every placement round,
// and the online controller re-routes every hour. Three layers cache:
//
//   - per-item demand sets (which nodes want each item, at what rate),
//     keyed by the Spec pointer: rebuilding the maps is pure overhead while
//     the demand matrix is fixed;
//   - the Lemma 4.5 auxiliary graph, keyed by the base graph's pointer and
//     mutation generation (graph.Graph.Gen) plus the replica groups: once
//     the alternating placement stabilizes, the groups repeat and the
//     virtual-source construction is identical;
//   - the multicommodity LP skeleton and its warm-start lp.Solver handle:
//     on a repeated auxiliary graph only the conservation right-hand sides
//     move, so the problem is mutated in place and the previous optimal
//     basis carries over.
//
// Every cache validates its key on each call and rebuilds on mismatch, so a
// Reuse handle never changes results — only how much work they take. The
// demand cache trusts the Spec pointer: callers that mutate s.Rates in place
// between calls must use a fresh Spec (the library's own loops build one per
// hour) or drop the handle.
//
// A Reuse is not safe for concurrent use; never share one across parallel
// workers (per-sequence handles keep `-workers N` runs bit-for-bit
// identical, see DESIGN.md §3.9). A nil *Reuse is valid and disables all
// caching, so call sites thread an optional handle without branching.
type Reuse struct {
	demSpec *placement.Spec
	demand  []itemDemand

	auxBase   *graph.Graph
	auxGen    uint64
	auxGroups [][]graph.NodeID
	aux       *graph.Auxiliary

	mcSolver *lp.Solver
	mcProb   *lp.Problem
	mcAux    *graph.Auxiliary
	mcGen    uint64
	// mcRow[k][v] is the conservation row of (item k, node v), -1 when the
	// node has no incident arcs (no row emitted).
	mcRow [][]int

	// Partition-aware solve caches (decompose.go): the cell decomposition
	// snapshot, keyed on the base graph's freshness and the assignment
	// content (with a Rebase fast path onto faults-degraded graphs), and
	// the per-cell LP skeletons with their solver handles, keyed on the
	// auxiliary graph's pointer and generation — between alternating
	// rounds only the conservation right-hand sides and variable bounds
	// move, so the skeletons mutate in place. The solver handles are reset
	// between top-level calls (see cellPrograms) and warm-start only the
	// within-call price-coordination re-solves.
	dcSet   *graph.CellSet
	dcAux   *graph.Auxiliary
	dcGen   uint64
	dcProgs []*cellProg

	eng *graph.Engine
}

// NewReuse returns an empty handle; every first use builds from scratch.
func NewReuse() *Reuse {
	return &Reuse{mcSolver: lp.NewSolver()}
}

// Engine returns the handle's shortest-path-tree engine, created lazily:
// the best-effort reach filter asks it for per-replica trees, which repeat
// across alternating rounds (same graph, same replicas) and repair cheaply
// across fault hours. A nil handle returns a nil engine, which computes
// everything cold — identical results either way.
func (r *Reuse) Engine() *graph.Engine {
	if r == nil {
		return nil
	}
	if r.eng == nil {
		r.eng = graph.NewEngine()
	}
	return r.eng
}

// Invalidate drops every cache (and the retained LP basis), forcing the next
// RouteContext call to rebuild from scratch. Nil-safe.
func (r *Reuse) Invalidate() {
	if r == nil {
		return
	}
	r.demSpec = nil
	r.demand = nil
	r.auxBase = nil
	r.auxGroups = nil
	r.aux = nil
	r.mcProb = nil
	r.mcAux = nil
	r.mcRow = nil
	r.dcSet = nil
	r.dcAux = nil
	r.dcProgs = nil
	r.eng = nil
	r.mcSolver.Invalidate()
}

// LPStats exposes the multicommodity solver's warm/cold counters (zero when
// the LP path never ran). Nil-safe.
func (r *Reuse) LPStats() lp.SolverStats {
	if r == nil {
		return lp.SolverStats{}
	}
	return r.mcSolver.Stats()
}

// solver returns the warm-start handle, nil when caching is off.
func (r *Reuse) solver() *lp.Solver {
	if r == nil {
		return nil
	}
	if r.mcSolver == nil {
		r.mcSolver = lp.NewSolver()
	}
	return r.mcSolver
}

// baseDemand returns the per-item demand sets of s (every item with positive
// total rate, its sink map and total), cached on the Spec pointer. The
// returned maps are shared with the cache: callers that delete entries
// (best-effort filtering) must clone first.
func (r *Reuse) baseDemand(s *placement.Spec) []itemDemand {
	if r != nil && r.demSpec == s {
		return r.demand
	}
	var out []itemDemand
	for i := 0; i < s.NumItems; i++ {
		sinks := map[graph.NodeID]float64{}
		var total float64
		for v, rate := range s.Rates[i] {
			if rate > 0 {
				sinks[v] += rate
				total += rate
			}
		}
		if total == 0 {
			continue
		}
		out = append(out, itemDemand{item: i, sinks: sinks, sorted: sortedSinks(sinks), total: total})
	}
	if r != nil {
		r.demSpec = s
		r.demand = out
	}
	return out
}

// auxiliary returns the Lemma 4.5 auxiliary graph for (g, groups), reusing
// the cached construction when the base graph (by pointer and mutation
// generation) and the replica groups are unchanged — fault injection that
// flips capacities in place moves g.Gen() and misses the cache.
func (r *Reuse) auxiliary(g *graph.Graph, groups [][]graph.NodeID) *graph.Auxiliary {
	if r != nil && r.auxBase == g && r.auxGen == g.Gen() && groupsEqual(r.auxGroups, groups) {
		return r.aux
	}
	aux := graph.NewAuxiliary(g, groups)
	if r != nil {
		r.auxBase = g
		r.auxGen = g.Gen()
		r.auxGroups = groups
		r.aux = aux
	}
	return aux
}

// groupsEqual reports element-wise equality of two replica group lists.
func groupsEqual(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// cloneSinks deep-copies a demand map.
func cloneSinks(sinks map[graph.NodeID]float64) map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64, len(sinks))
	for v, d := range sinks {
		out[v] = d
	}
	return out
}

// mcMutate updates the cached multicommodity skeleton's conservation
// right-hand sides for the new demands and reports whether the cache was
// applicable: the auxiliary graph must be the cached one (same pointer, same
// generation — capacities and costs are baked into the skeleton) and every
// nonzero supply must land on an existing row. On any mismatch the caller
// rebuilds from scratch.
func (r *Reuse) mcMutate(aux *graph.Auxiliary, active []itemDemand) (*lp.Problem, bool) {
	if r == nil || r.mcProb == nil || r.mcAux != aux || r.mcGen != aux.G.Gen() || len(r.mcRow) != len(active) {
		return nil, false
	}
	p := r.mcProb
	for k, ad := range active {
		vs := aux.VirtualSource[k]
		rows := r.mcRow[k]
		for v := 0; v < aux.G.NumNodes(); v++ {
			supply := 0.0
			if v == vs {
				supply = ad.total
			} else if d, isSink := ad.sinks[v]; isSink {
				supply = -d
			}
			ri := rows[v]
			if ri < 0 {
				if supply != 0 {
					// Demand on an incidence-free node: the skeleton has no
					// row to carry it, so the cold build's error path must
					// run instead.
					return nil, false
				}
				continue
			}
			if err := p.SetConstraintRHS(ri, supply); err != nil {
				return nil, false
			}
		}
	}
	return p, true
}

// mcStore records a freshly built skeleton for the next mcMutate.
func (r *Reuse) mcStore(aux *graph.Auxiliary, p *lp.Problem, rows [][]int) {
	if r == nil {
		return
	}
	r.mcProb = p
	r.mcAux = aux
	r.mcGen = aux.G.Gen()
	r.mcRow = rows
}

// cellSet returns the decomposition snapshot for (base, assign), reusing
// the cached one while it is fresh, rebasing it onto a faults-degraded
// graph when possible, and rebuilding otherwise. Nil-safe.
func (r *Reuse) cellSet(base *graph.Graph, assign []int) (*graph.CellSet, error) {
	if r != nil && r.dcSet != nil && intSliceEqual(r.dcSet.Assign(), assign) {
		if r.dcSet.Fresh(base) {
			return r.dcSet, nil
		}
		if rb, ok := r.dcSet.Rebase(base); ok {
			r.dcSet = rb
			r.dcProgs = nil
			return rb, nil
		}
	}
	cs, err := graph.NewCellSet(base, assign)
	if err != nil {
		return nil, err
	}
	if r != nil {
		r.dcSet = cs
		r.dcProgs = nil
	}
	return cs, nil
}

// cellPrograms returns the per-cell LP skeletons for (cs, aux, active). On
// a structurally repeated instance — the cached cell set, the cached
// auxiliary graph at the same generation (which pins the replica groups),
// and the same active item count — the cached skeletons are mutated in
// place (demand right-hand sides and per-item bounds) so every cell's
// solver warm-starts from its previous basis; otherwise the skeletons are
// rebuilt and retained. Nil-safe.
func (r *Reuse) cellPrograms(cs *graph.CellSet, aux *graph.Auxiliary, active []itemDemand) ([]*cellProg, error) {
	if r != nil && r.dcProgs != nil && r.dcSet == cs && r.dcAux == aux && r.dcGen == aux.G.Gen() &&
		mutateCellPrograms(r.dcProgs, active) {
		// Drop the solver state retained from the previous top-level call.
		// The price-coordination LPs are dual degenerate by construction
		// (the prices equalize arc costs), so a warm start from a
		// foreign basis can terminate at a different alternate optimum,
		// fork the subgradient trajectory, and change the reported dual
		// bound — violating the handle's results-never-change contract.
		// A cold first iteration makes every call's solve sequence a pure
		// function of the instance; the within-call re-solves (the bulk)
		// still warm-start.
		for _, pr := range r.dcProgs {
			pr.solver.Invalidate()
		}
		return r.dcProgs, nil
	}
	progs, err := buildCellPrograms(cs, aux, active)
	if err != nil {
		return nil, err
	}
	if r != nil {
		r.dcProgs = progs
		r.dcSet = cs
		r.dcAux = aux
		r.dcGen = aux.G.Gen()
	}
	return progs, nil
}

// intSliceEqual reports element-wise equality of two assignments.
func intSliceEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
