package routing

import (
	"context"
	"fmt"
	"math"
	"sort"

	"jcr/internal/core/lputil"
	"jcr/internal/flow"
	"jcr/internal/graph"
	"jcr/internal/lp"
	"jcr/internal/par"
	"jcr/internal/placement"
)

// This file is the partition-aware solve path (DESIGN.md §10): instead of
// one multicommodity LP over the whole network, the base graph is cut into
// cells (topo.Partition / graph.CellSet) and each cell solves its own small
// LP, with the cells coordinated through Lagrangian prices on the gateway
// arcs. Per cell and item, the program keeps one flow variable per internal
// arc, an export copy x_e of every gateway arc leaving the cell, an import
// copy y_e of every gateway arc entering it, and a supply variable per
// replica inside the cell; the relaxed couplings are the gateway consensus
// x_e = y_e (price mu[k][e]) and the per-item supply split
// sum_cells sum_replicas v = total_k (price lambda[k]). Every price update
// is an objective-coefficient-only mutation of the retained cell skeletons,
// so each iteration re-solves warm through the per-cell lp.Solver handles;
// the cells of one iteration solve in parallel under par.Do and merge by
// cell index, keeping any worker count bit-identical.
//
// The coordinator's subgradient ascent yields a valid lower bound L on the
// monolithic MMSFP optimum for any prices; the feasible routing it returns
// comes from a strict sequential residual recovery (no capacity-oblivious
// escape), optionally guided by the converged supply split. The reported
// interval [LowerBound, PrimalCost] therefore brackets the monolithic
// optimum by construction — the differential suite pins exactly this.

// Numerical and loop constants of the decomposition, named in one place
// (jcrlint tol-literal).
const (
	// defaultPriceIters bounds the price-coordination iterations.
	defaultPriceIters = 48
	// defaultGapTol is the relative duality-gap target that stops the
	// price loop early.
	defaultGapTol = 2e-2
	// consensusEps is the squared subgradient norm below which the cell
	// solutions already agree on every relaxed coupling.
	consensusEps = 1e-18
	// priceStallIters is how many non-improving dual iterations halve the
	// Polyak step scale.
	priceStallIters = 3
	// dualImproveTol is the relative margin for counting a dual iterate as
	// an improvement.
	dualImproveTol = 1e-9
	// guidedSlackRel and guidedSlackAbs pad the supply-split caps of the
	// guided primal recovery, absorbing LP-solution float residue.
	guidedSlackRel = 5e-2
	// guidedSlackAbs is the absolute part of the guided-recovery padding.
	guidedSlackAbs = 1e-6
)

// DecomposeOptions configure the partition-aware solve path. The zero
// Assign is invalid; everything else zero means the default.
type DecomposeOptions struct {
	// Assign maps every base-graph node to its cell (topo.Partition's
	// output, or a composite network's block assignment). Required.
	Assign []int
	// MaxIters bounds the price-coordination iterations; zero means
	// defaultPriceIters.
	MaxIters int
	// GapTol is the relative duality-gap target that stops the price loop;
	// zero means defaultGapTol.
	GapTol float64
	// MinVars is the (item, arc) variable count below which the routing
	// layer keeps the monolithic LP instead (it fits comfortably); zero
	// means the LP path's own defaultLPMaxVars.
	MinVars int
}

func (d *DecomposeOptions) maxIters() int {
	if d.MaxIters > 0 {
		return d.MaxIters
	}
	return defaultPriceIters
}

func (d *DecomposeOptions) gapTol() float64 {
	if d.GapTol > 0 {
		return d.GapTol
	}
	return defaultGapTol
}

func (d *DecomposeOptions) minVars() int {
	if d.MinVars > 0 {
		return d.MinVars
	}
	return defaultLPMaxVars
}

// DecomposeInfo reports the decomposition's certificate: the Lagrangian
// lower bound on the monolithic MMSFP optimum, the cost of the feasible
// routing actually returned, and their gap. The monolithic optimum lies in
// [LowerBound, PrimalCost] whenever the instance is feasible.
type DecomposeInfo struct {
	// Cells is the number of cells solved.
	Cells int
	// GatewayArcs is the number of priced cross-cell arcs.
	GatewayArcs int
	// Iterations counts price-coordination iterations run.
	Iterations int
	// LowerBound is the best Lagrangian dual value found.
	LowerBound float64
	// PrimalCost is the cost of the returned capacity-feasible routing.
	PrimalCost float64
	// Gap is PrimalCost - LowerBound.
	Gap float64
}

// cellProg is one cell's LP skeleton with its warm-start handle and the
// cell-local/global translation needed to mutate prices and read the
// coupling variables back out.
//
//jcr:celllocal
type cellProg struct {
	view   *graph.CellView
	prob   *lp.Problem
	solver *lp.Solver
	sol    *lp.Solution

	// Column layout: item k's flow variables occupy [k*stride,
	// (k+1)*stride) as [internal | exports | imports], in each class's
	// ascending global-arc order; supply columns follow all flow columns.
	stride, nIn, nEx int
	// exPos/imPos translate a global gateway-arc ID to its position in
	// the cell's export/import class.
	exPos, imPos map[graph.ArcID]int
	// replicas[k] lists item k's replica nodes inside the cell (global,
	// ascending); supplyCol[k] the matching variable columns.
	replicas  [][]graph.NodeID
	supplyCol [][]int
	// consRow[k][local] is the conservation row of (item k, local node),
	// -1 when the node has no incident arcs and no replica (no row).
	consRow [][]int
}

// gwRef locates one gateway arc's export and import copies across the cell
// programs, per item via the programs' stride.
type gwRef struct {
	tailCell, exPos int
	headCell, imPos int
}

// decomposedFlows runs the partition-aware solve: build (or reuse) the
// per-cell skeletons, iterate Lagrangian prices on the gateway couplings
// with warm per-cell resolves, and return a strict capacity-feasible
// routing together with the duality certificate. Any structural problem —
// degenerate partition, an infeasible cell, recovery failure — is returned
// as an error so splittableFlows can fall back to the monolithic path.
func decomposedFlows(ctx context.Context, aux *graph.Auxiliary, active []itemDemand, opts Options) ([][]float64, *DecomposeInfo, error) {
	dec := opts.Decompose
	cs, err := opts.Reuse.cellSet(aux.Base, dec.Assign)
	if err != nil {
		return nil, nil, err
	}
	if cs.K() < 2 {
		return nil, nil, fmt.Errorf("routing: decomposition needs at least 2 cells, have %d", cs.K())
	}
	progs, err := opts.Reuse.cellPrograms(cs, aux, active)
	if err != nil {
		return nil, nil, err
	}
	// Strict feasible routing first: it anchors the Polyak steps and is
	// the result's primal half. Failure here means the greedy recovery
	// cannot certify feasibility, so the caller's fallbacks take over.
	primal, primalCost, err := recoverStrict(ctx, aux, active, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("routing: decomposed primal recovery: %w", err)
	}
	nc := len(active)
	gwArcs := cs.GatewayArcs()
	refs := gatewayRefs(cs, progs)
	mu := make([][]float64, nc)
	for k := range mu {
		mu[k] = make([]float64, len(gwArcs))
	}
	lam := make([]float64, nc)
	info := &DecomposeInfo{Cells: cs.K(), GatewayArcs: len(gwArcs)}
	bestDual := math.Inf(-1)
	theta := 1.0
	stall := 0
	gapTol := dec.gapTol()
	for it := 1; it <= dec.maxIters(); it++ {
		info.Iterations = it
		applyPrices(cs, progs, mu, lam)
		if err := solveCells(ctx, progs, opts.Workers); err != nil {
			if ctx != nil && ctx.Err() != nil {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("routing: decomposed cell solve: %w", err)
		}
		dual := 0.0
		for _, pr := range progs {
			dual += pr.sol.Objective
		}
		for k := range active {
			dual -= lam[k] * active[k].total
		}
		if dual > bestDual+dualImproveTol*(1+math.Abs(dual)) {
			bestDual = dual
			stall = 0
		} else {
			stall++
			if stall >= priceStallIters {
				theta /= 2
				stall = 0
			}
		}
		if bestDual < dual {
			bestDual = dual
		}
		if primalCost-bestDual <= gapTol*math.Max(1, math.Abs(primalCost)) {
			break
		}
		// Subgradients of the relaxed couplings.
		gMu := make([][]float64, nc)
		norm2 := 0.0
		for k := range active {
			gMu[k] = make([]float64, len(gwArcs))
			for gi := range gwArcs {
				r := refs[gi]
				x := progs[r.tailCell].flowVal(k, progs[r.tailCell].nIn+r.exPos)
				y := progs[r.headCell].flowVal(k, progs[r.headCell].nIn+progs[r.headCell].nEx+r.imPos)
				gMu[k][gi] = x - y
				norm2 += gMu[k][gi] * gMu[k][gi]
			}
		}
		gLam := make([]float64, nc)
		for k := range active {
			v := 0.0
			for _, pr := range progs {
				for _, col := range pr.supplyCol[k] {
					v += pr.sol.X[col]
				}
			}
			gLam[k] = v - active[k].total
			norm2 += gLam[k] * gLam[k]
		}
		if norm2 <= consensusEps {
			// The cells agree on every coupling: the merged solution is
			// optimal for the monolithic LP and dual equals its value.
			break
		}
		step := theta * (primalCost - dual) / norm2
		if step <= 0 {
			break
		}
		for k := range active {
			for gi := range gwArcs {
				mu[k][gi] += step * gMu[k][gi]
			}
			lam[k] += step * gLam[k]
		}
	}
	// A supply-split-guided recovery can beat the cold greedy one once the
	// prices have located the right regional sources; keep whichever
	// feasible routing is cheaper.
	if caps := supplySplit(progs, active); caps != nil {
		if guided, guidedCost, err := recoverStrict(ctx, aux, active, caps); err == nil && guidedCost < primalCost {
			primal, primalCost = guided, guidedCost
		} else if ctx != nil && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
	}
	info.PrimalCost = primalCost
	info.LowerBound = bestDual
	info.Gap = primalCost - bestDual
	return primal, info, nil
}

// flowVal reads item k's flow variable at the given within-item offset.
func (pr *cellProg) flowVal(k, off int) float64 { return pr.sol.X[k*pr.stride+off] }

// gatewayRefs locates every gateway arc's export and import columns.
func gatewayRefs(cs *graph.CellSet, progs []*cellProg) []gwRef {
	assign := cs.Assign()
	refs := make([]gwRef, 0, len(cs.GatewayArcs()))
	for _, id := range cs.GatewayArcs() {
		a := cs.Base().Arc(id)
		tc, hc := assign[a.From], assign[a.To]
		refs = append(refs, gwRef{
			tailCell: tc, exPos: progs[tc].exPos[id],
			headCell: hc, imPos: progs[hc].imPos[id],
		})
	}
	return refs
}

// applyPrices writes the current prices into every cell skeleton's
// objective: exports cost c_e + mu, imports -mu, supplies lambda. Pure
// objective-coefficient mutation — the retained bases stay warm.
func applyPrices(cs *graph.CellSet, progs []*cellProg, mu [][]float64, lam []float64) {
	base := cs.Base()
	for _, pr := range progs {
		for k := range mu {
			for pos, id := range pr.view.ExportArcs() {
				pr.prob.SetObjectiveCoeff(k*pr.stride+pr.nIn+pos, base.Arc(id).Cost+mu[k][cs.GatewayIndex(id)])
			}
			for pos, id := range pr.view.ImportArcs() {
				pr.prob.SetObjectiveCoeff(k*pr.stride+pr.nIn+pr.nEx+pos, -mu[k][cs.GatewayIndex(id)])
			}
			for _, col := range pr.supplyCol[k] {
				pr.prob.SetObjectiveCoeff(col, lam[k])
			}
		}
	}
}

// solveCells solves every cell program, fanned out on the bounded pool;
// prog i is touched only by the worker that claims index i, and each cell
// keeps its own warm solver, so results are identical for any worker count.
func solveCells(ctx context.Context, progs []*cellProg, workers int) error {
	return par.Do(ctx, workers, len(progs), func(c int) error {
		sol, err := lputil.SolveWith(ctx, progs[c].solver, "routing: decomposed cell LP", progs[c].prob)
		if err != nil {
			return fmt.Errorf("cell %d: %w", c, err)
		}
		progs[c].sol = sol
		return nil
	})
}

// supplySplit extracts the converged per-replica supply caps from the cell
// solutions, padded by the guided-recovery slack. Nil when no cell has
// solved yet.
func supplySplit(progs []*cellProg, active []itemDemand) []map[graph.NodeID]float64 {
	for _, pr := range progs {
		if pr.sol == nil {
			return nil
		}
	}
	caps := make([]map[graph.NodeID]float64, len(active))
	for k := range active {
		caps[k] = map[graph.NodeID]float64{}
		for _, pr := range progs {
			for ri, v := range pr.replicas[k] {
				caps[k][v] = pr.sol.X[pr.supplyCol[k][ri]]*(1+guidedSlackRel) + guidedSlackAbs*(1+active[k].total)
			}
		}
	}
	return caps
}

// recoverStrict routes every item sequentially against residual capacities,
// largest demand first, with NO capacity-oblivious escape: a failure is
// returned (and the caller falls back), so a success certifies a
// capacity-feasible routing whose cost upper-bounds the monolithic optimum.
// supplyCaps, when non-nil, additionally caps each item's virtual arcs to
// the decomposition's supply split (the guided pass). On failure the
// reverse order is tried once — the greedy order, not the instance, is
// usually what jams.
func recoverStrict(ctx context.Context, aux *graph.Auxiliary, active []itemDemand, supplyCaps []map[graph.NodeID]float64) ([][]float64, float64, error) {
	order := make([]int, len(active))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return active[order[a]].total > active[order[b]].total })
	flows, cost, err := recoverInOrder(ctx, aux, active, order, supplyCaps)
	if err == nil {
		return flows, cost, nil
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, 0, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return recoverInOrder(ctx, aux, active, order, supplyCaps)
}

func recoverInOrder(ctx context.Context, aux *graph.Auxiliary, active []itemDemand, order []int, supplyCaps []map[graph.NodeID]float64) ([][]float64, float64, error) {
	g := aux.G
	residual := make([]float64, g.NumArcs())
	for id := range residual {
		residual[id] = g.Arc(id).Cap
	}
	flows := make([][]float64, len(active))
	var cost float64
	for _, k := range order {
		gg := g.Clone()
		for id := 0; id < g.NumArcs(); id++ {
			if !aux.IsVirtualArc(id) {
				gg.SetArcCap(id, residual[id])
			}
		}
		if supplyCaps != nil {
			for _, v := range sortedArcKeys(aux.VirtualArc[k]) {
				gg.SetArcCap(aux.VirtualArc[k][v], supplyCaps[k][v])
			}
		}
		super := gg.AddNode()
		var total float64
		for _, t := range active[k].sorted {
			gg.AddArc(t, super, 0, active[k].sinks[t])
			total += active[k].sinks[t]
		}
		res, err := flow.MinCostFlowContext(ctx, gg, aux.VirtualSource[k], super, total)
		if err != nil {
			return nil, 0, fmt.Errorf("item %d: %w", active[k].item, err)
		}
		f := res.Arc[:g.NumArcs()]
		flows[k] = f
		for id, v := range f {
			if !aux.IsVirtualArc(id) {
				residual[id] -= v
				if residual[id] < 0 {
					residual[id] = 0
				}
				cost += v * g.Arc(id).Cost
			}
		}
	}
	return flows, cost, nil
}

// sortedArcKeys returns a virtual-arc map's replica nodes in ascending
// order, keeping float and graph mutations independent of map iteration.
func sortedArcKeys(m map[graph.NodeID]graph.ArcID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// buildCellPrograms constructs every cell's LP skeleton from scratch.
//
//jcr:celllocal
func buildCellPrograms(cs *graph.CellSet, aux *graph.Auxiliary, active []itemDemand) ([]*cellProg, error) {
	replicasOf := make([][]graph.NodeID, len(active))
	for k := range active {
		replicasOf[k] = sortedArcKeys(aux.VirtualArc[k])
	}
	progs := make([]*cellProg, cs.K())
	for c := range progs {
		pr, err := buildCellProgram(cs, cs.Cell(c), active, replicasOf)
		if err != nil {
			return nil, fmt.Errorf("routing: cell %d: %w", c, err)
		}
		progs[c] = pr
	}
	return progs, nil
}

//jcr:celllocal
func buildCellProgram(cs *graph.CellSet, cv *graph.CellView, active []itemDemand, replicasOf [][]graph.NodeID) (*cellProg, error) {
	base := cs.Base()
	nc := len(active)
	nIn, nEx, nIm := len(cv.InternalArcs()), len(cv.ExportArcs()), len(cv.ImportArcs())
	stride := nIn + nEx + nIm
	pr := &cellProg{
		view:   cv,
		solver: lp.NewSolver(),
		stride: stride, nIn: nIn, nEx: nEx,
		exPos:     make(map[graph.ArcID]int, nEx),
		imPos:     make(map[graph.ArcID]int, nIm),
		replicas:  make([][]graph.NodeID, nc),
		supplyCol: make([][]int, nc),
		consRow:   make([][]int, nc),
	}
	for pos, id := range cv.ExportArcs() {
		pr.exPos[id] = pos
	}
	for pos, id := range cv.ImportArcs() {
		pr.imPos[id] = pos
	}
	numSupply := 0
	for k := range active {
		for _, v := range replicasOf[k] {
			if _, ok := cv.LocalNode(v); ok {
				pr.replicas[k] = append(pr.replicas[k], v)
				numSupply++
			}
		}
	}
	p := lputil.NewProblem(nc*stride + numSupply)
	pr.prob = p
	col := nc * stride
	for k := range active {
		pr.supplyCol[k] = make([]int, len(pr.replicas[k]))
		for ri := range pr.replicas[k] {
			pr.supplyCol[k][ri] = col
			col++
		}
	}
	// Objective (price-free part) and bounds. Prices are layered on by
	// applyPrices before every solve.
	for k := range active {
		hi := active[k].total
		for pos, id := range cv.InternalArcs() {
			j := k*stride + pos
			p.SetObjectiveCoeff(j, base.Arc(id).Cost)
			p.SetBounds(j, 0, hi)
		}
		for pos, id := range cv.ExportArcs() {
			j := k*stride + nIn + pos
			p.SetObjectiveCoeff(j, base.Arc(id).Cost)
			p.SetBounds(j, 0, hi)
		}
		for pos := range cv.ImportArcs() {
			p.SetBounds(k*stride+nIn+nEx+pos, 0, hi)
		}
		for _, j := range pr.supplyCol[k] {
			p.SetBounds(j, 0, hi)
		}
	}
	// Per-node incidence in within-item offsets, reused for every item.
	nLocal := cv.NumNodes()
	outOf := make([][]int, nLocal) // +1 coefficients
	inOf := make([][]int, nLocal)  // -1 coefficients
	for pos, id := range cv.InternalArcs() {
		a := base.Arc(id)
		lf, _ := cv.LocalNode(a.From)
		lt, _ := cv.LocalNode(a.To)
		outOf[lf] = append(outOf[lf], pos)
		inOf[lt] = append(inOf[lt], pos)
	}
	for pos, id := range cv.ExportArcs() {
		lf, _ := cv.LocalNode(base.Arc(id).From)
		outOf[lf] = append(outOf[lf], nIn+pos)
	}
	for pos, id := range cv.ImportArcs() {
		lt, _ := cv.LocalNode(base.Arc(id).To)
		inOf[lt] = append(inOf[lt], nIn+nEx+pos)
	}
	row := lp.NewRowBuilder(p)
	nrows := 0
	for k, ad := range active {
		pr.consRow[k] = make([]int, nLocal)
		ri := 0
		for li := 0; li < nLocal; li++ {
			pr.consRow[k][li] = -1
			v := cv.GlobalNode(li)
			for _, off := range outOf[li] {
				row.Add(k*stride+off, 1)
			}
			for _, off := range inOf[li] {
				row.Add(k*stride+off, -1)
			}
			if ri < len(pr.replicas[k]) && pr.replicas[k][ri] == v {
				row.Add(pr.supplyCol[k][ri], -1)
				ri++
			}
			supply := 0.0
			if d, isSink := ad.sinks[v]; isSink {
				supply = -d
			}
			if row.Len() == 0 {
				if supply != 0 {
					return nil, fmt.Errorf("node %d has demand but no incident arcs", v)
				}
				continue
			}
			if err := row.Constrain(lp.EQ, supply); err != nil {
				return nil, err
			}
			pr.consRow[k][li] = nrows
			nrows++
		}
	}
	// Shared capacities: internal arcs, and exports (the tail cell owns a
	// gateway arc's capacity; the head cell's import copy is the priced
	// consensus partner, not a second capacity).
	for pos, id := range cv.InternalArcs() {
		c := base.Arc(id).Cap
		if math.IsInf(c, 1) {
			continue
		}
		for k := 0; k < nc; k++ {
			row.Add(k*stride+pos, 1)
		}
		if err := row.Constrain(lp.LE, c); err != nil {
			return nil, err
		}
	}
	for pos, id := range cv.ExportArcs() {
		c := base.Arc(id).Cap
		if math.IsInf(c, 1) {
			continue
		}
		for k := 0; k < nc; k++ {
			row.Add(k*stride+nIn+pos, 1)
		}
		if err := row.Constrain(lp.LE, c); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// mutateCellPrograms rewrites the demand-dependent data of cached cell
// skeletons in place — conservation right-hand sides and per-item variable
// bounds — and reports whether the cache applied. The structure (rows,
// columns, replica sets) is pinned by the caller's cache key (same
// auxiliary graph at the same generation implies the same replica groups);
// any residual mismatch tells the caller to rebuild.
//
//jcr:celllocal
func mutateCellPrograms(progs []*cellProg, active []itemDemand) bool {
	for _, pr := range progs {
		if len(pr.consRow) != len(active) {
			return false
		}
		cv := pr.view
		for k, ad := range active {
			hi := ad.total
			for off := 0; off < pr.stride; off++ {
				pr.prob.SetBounds(k*pr.stride+off, 0, hi)
			}
			for _, j := range pr.supplyCol[k] {
				pr.prob.SetBounds(j, 0, hi)
			}
			for li := 0; li < cv.NumNodes(); li++ {
				supply := 0.0
				if d, isSink := ad.sinks[cv.GlobalNode(li)]; isSink {
					supply = -d
				}
				ri := pr.consRow[k][li]
				if ri < 0 {
					if supply != 0 {
						return false
					}
					continue
				}
				if err := pr.prob.SetConstraintRHS(ri, supply); err != nil {
					return false
				}
			}
		}
	}
	return true
}

// SolveMMSFPDecomposed runs the partition-aware solve directly on a fixed
// placement with no heuristic fallbacks, returning the duality certificate:
// the monolithic MMSFP optimum (SolveMMSFPExact) lies in
// [LowerBound, PrimalCost] on every feasible instance. Intended for the
// differential suite and benchmarks; the evaluation-scale path is Route
// with Options.Decompose.
func SolveMMSFPDecomposed(ctx context.Context, s *placement.Spec, pl *placement.Placement, dec DecomposeOptions, workers int) (*DecomposeInfo, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var active []itemDemand
	var groups [][]graph.NodeID
	for i := 0; i < s.NumItems; i++ {
		sinks := map[graph.NodeID]float64{}
		var total float64
		for v, r := range s.Rates[i] {
			if r > 0 {
				sinks[v] += r
				total += r
			}
		}
		if total == 0 {
			continue
		}
		reps := pl.Replicas(i)
		if len(reps) == 0 {
			return nil, fmt.Errorf("routing: item %d has no replicas", i)
		}
		active = append(active, itemDemand{item: i, sinks: sinks, sorted: sortedSinks(sinks), total: total})
		groups = append(groups, reps)
	}
	if len(active) == 0 {
		return &DecomposeInfo{}, nil
	}
	aux := graph.NewAuxiliary(s.G, groups)
	opts := Options{Workers: workers, Decompose: &dec}
	_, info, err := decomposedFlows(ctx, aux, active, opts)
	return info, err
}
