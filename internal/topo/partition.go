package topo

import (
	"fmt"
	"sort"

	"jcr/internal/graph"
)

// Partition splits a graph's nodes into k non-empty cells by deterministic
// recursive edge-cut bisection, the decomposition substrate of the
// partition-aware solve pipeline (DESIGN.md §10): each level grows one side
// of the split by breadth-first search from a peripheral seed over a
// CSR-style flattening of the undirected adjacency, then runs a bounded
// number of greedy boundary-refinement passes that move nodes across the
// split only when doing so strictly reduces the number of cut edges without
// unbalancing the halves. The returned assignment maps every node to a cell
// index in [0, k); cell indices are dense and every cell is non-empty.
//
// The construction is a pure function of (g, k): no randomness, ties broken
// by node ID, so repeated calls (and any worker count downstream) see the
// same cells.
func Partition(g *graph.Graph, k int) ([]int, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("topo: cannot partition an empty graph")
	}
	n := g.NumNodes()
	if k < 1 {
		return nil, fmt.Errorf("topo: need at least 1 cell, got %d", k)
	}
	if k > n {
		return nil, fmt.Errorf("topo: %d cells exceed %d nodes", k, n)
	}
	assign := make([]int, n)
	if k == 1 {
		return assign, nil
	}
	adj := flattenAdjacency(g)
	nodes := make([]graph.NodeID, n)
	for v := range nodes {
		nodes[v] = v
	}
	bisect(adj, nodes, k, 0, assign)
	return assign, nil
}

// CutArcs counts the arcs of g whose endpoints land in different cells of
// the assignment — the gateway arcs the boundary coordinator prices.
func CutArcs(g *graph.Graph, assign []int) int {
	cut := 0
	for id := 0; id < g.NumArcs(); id++ {
		a := g.Arc(id)
		if assign[a.From] != assign[a.To] {
			cut++
		}
	}
	return cut
}

// flatAdj is a CSR-style snapshot of the undirected adjacency: nbr[off[v]:
// off[v+1]] lists v's neighbors across both arc directions (parallel arcs
// kept, so boundary gains weight multi-edges correctly).
type flatAdj struct {
	off []int
	nbr []graph.NodeID
}

func (a *flatAdj) neighbors(v graph.NodeID) []graph.NodeID { return a.nbr[a.off[v]:a.off[v+1]] }

func flattenAdjacency(g *graph.Graph) *flatAdj {
	n := g.NumNodes()
	a := &flatAdj{off: make([]int, n+1)}
	for v := 0; v < n; v++ {
		a.off[v+1] = a.off[v] + g.OutDegree(v) + g.InDegree(v)
	}
	a.nbr = make([]graph.NodeID, a.off[n])
	fill := append([]int(nil), a.off[:n]...)
	for v := 0; v < n; v++ {
		for _, id := range g.Out(v) {
			a.nbr[fill[v]] = g.Arc(id).To
			fill[v]++
		}
		for _, id := range g.In(v) {
			a.nbr[fill[v]] = g.Arc(id).From
			fill[v]++
		}
	}
	return a
}

// bisect assigns cells [cell0, cell0+k) to the given nodes. For k == 1 the
// recursion bottoms out; otherwise the nodes are split into two sides with
// sizes proportional to the cell counts each side will receive.
func bisect(adj *flatAdj, nodes []graph.NodeID, k, cell0 int, assign []int) {
	if k == 1 {
		for _, v := range nodes {
			assign[v] = cell0
		}
		return
	}
	kA := (k + 1) / 2
	targetA := len(nodes) * kA / k
	if targetA < 1 {
		targetA = 1
	}
	if targetA > len(nodes)-1 {
		targetA = len(nodes) - 1
	}
	inA := growRegion(adj, nodes, targetA)
	refineCut(adj, nodes, inA, targetA)
	var sideA, sideB []graph.NodeID
	for _, v := range nodes {
		if inA[v] {
			sideA = append(sideA, v)
		} else {
			sideB = append(sideB, v)
		}
	}
	bisect(adj, sideA, kA, cell0, assign)
	bisect(adj, sideB, k-kA, cell0+kA, assign)
}

// growRegion marks target nodes as side A by breadth-first search from a
// peripheral seed (a double BFS sweep from the lowest node ID finds it), so
// side A is connected whenever the induced subgraph is. Disconnected
// leftovers are swept up from the lowest remaining ID.
func growRegion(adj *flatAdj, nodes []graph.NodeID, target int) map[graph.NodeID]bool {
	member := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		member[v] = true
	}
	seed := peripheralNode(adj, nodes, member)
	inA := make(map[graph.NodeID]bool, target)
	frontier := []graph.NodeID{seed}
	inA[seed] = true
	count := 1
	for count < target {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range adj.neighbors(v) {
				if member[w] && !inA[w] && count < target {
					inA[w] = true
					count++
					next = append(next, w)
				}
			}
		}
		if len(next) == 0 {
			// Induced subgraph exhausted a component; restart from the
			// lowest unassigned node.
			restart := graph.NodeID(-1)
			for _, v := range nodes {
				if !inA[v] {
					restart = v
					break
				}
			}
			if restart < 0 {
				break
			}
			inA[restart] = true
			count++
			next = []graph.NodeID{restart}
		}
		frontier = next
	}
	return inA
}

// peripheralNode runs a double BFS sweep restricted to member nodes: from
// the lowest node ID to its farthest node, which seeds the region growth at
// the periphery rather than the center (smaller cuts for mesh-like cores).
func peripheralNode(adj *flatAdj, nodes []graph.NodeID, member map[graph.NodeID]bool) graph.NodeID {
	far := func(src graph.NodeID) graph.NodeID {
		seen := map[graph.NodeID]bool{src: true}
		frontier := []graph.NodeID{src}
		last := src
		for len(frontier) > 0 {
			sort.Ints(frontier)
			last = frontier[0]
			var next []graph.NodeID
			for _, v := range frontier {
				for _, w := range adj.neighbors(v) {
					if member[w] && !seen[w] {
						seen[w] = true
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		return last
	}
	return far(far(nodes[0]))
}

// refineCut runs two deterministic passes of greedy boundary moves: a node
// moves to the other side when that strictly cuts fewer of its incident
// edges, unless the move would push either side below three quarters of its
// target share. Nodes are visited in ascending ID order.
func refineCut(adj *flatAdj, nodes []graph.NodeID, inA map[graph.NodeID]bool, targetA int) {
	sorted := append([]graph.NodeID(nil), nodes...)
	sort.Ints(sorted)
	member := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		member[v] = true
	}
	sizeA := len(inA)
	minA := 3 * targetA / 4
	if minA < 1 {
		minA = 1
	}
	targetB := len(nodes) - targetA
	minB := 3 * targetB / 4
	if minB < 1 {
		minB = 1
	}
	for pass := 0; pass < 2; pass++ {
		moved := false
		for _, v := range sorted {
			same, other := 0, 0
			for _, w := range adj.neighbors(v) {
				if !member[w] {
					continue
				}
				if inA[w] == inA[v] {
					same++
				} else {
					other++
				}
			}
			if other <= same {
				continue
			}
			if inA[v] {
				if sizeA-1 < minA {
					continue
				}
				delete(inA, v)
				sizeA--
			} else {
				if len(nodes)-sizeA-1 < minB {
					continue
				}
				inA[v] = true
				sizeA++
			}
			moved = true
		}
		if !moved {
			break
		}
	}
}
