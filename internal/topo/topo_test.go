package topo

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"jcr/internal/graph"
)

func TestGenerateSizes(t *testing.T) {
	cases := []struct {
		net          *Network
		nodes, links int
		edges        int
	}{
		{Abovenet(1), 23, 31, 9},
		{Abvt(1), 23, 31, 5},
		{Tinet(1), 53, 89, 5},
		{Deltacom(1), 113, 161, 5},
	}
	for _, c := range cases {
		if got := c.net.G.NumNodes(); got != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.net.Name, got, c.nodes)
		}
		if got := c.net.G.NumArcs(); got != 2*c.links {
			t.Errorf("%s: %d arcs, want %d", c.net.Name, got, 2*c.links)
		}
		if got := len(c.net.Edges); got != c.edges {
			t.Errorf("%s: %d edge nodes, want %d", c.net.Name, got, c.edges)
		}
		if !c.net.G.Connected() {
			t.Errorf("%s: not connected", c.net.Name)
		}
	}
}

func TestOriginIsLowestDegree(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		n := Abovenet(seed)
		od := n.G.UndirectedDegree(n.Origin)
		for v := 0; v < n.G.NumNodes(); v++ {
			if n.G.UndirectedDegree(v) < od {
				t.Fatalf("seed %d: node %d has degree %d < origin's %d", seed, v, n.G.UndirectedDegree(v), od)
			}
		}
		if od != 1 {
			t.Errorf("seed %d: origin degree = %d, want 1 (paper designates a degree-1 node)", seed, od)
		}
		// Edge nodes have low degree (<= 3 per Section 6).
		for _, e := range n.Edges {
			if d := n.G.UndirectedDegree(e); d > 3 {
				t.Errorf("seed %d: edge node %d has degree %d > 3", seed, e, d)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Abovenet(42)
	b := Abovenet(42)
	if a.Origin != b.Origin || len(a.Edges) != len(b.Edges) || a.G.NumArcs() != b.G.NumArcs() {
		t.Fatal("same seed produced different networks")
	}
	for id := 0; id < a.G.NumArcs(); id++ {
		if a.G.Arc(id) != b.G.Arc(id) {
			t.Fatal("same seed produced different arcs")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("x", 2, 1, 1, 1); err == nil {
		t.Error("2 nodes accepted")
	}
	if _, err := Generate("x", 5, 3, 1, 1); err == nil {
		t.Error("too few links accepted")
	}
	if _, err := Generate("x", 5, 11, 1, 1); err == nil {
		t.Error("too many links accepted")
	}
}

func TestAssignCosts(t *testing.T) {
	n := Abovenet(3)
	n.AssignCosts(rand.New(rand.NewSource(1)), 100, 200, 1, 20)
	for id := 0; id < n.G.NumArcs(); id++ {
		a := n.G.Arc(id)
		touchesOrigin := a.From == n.Origin || a.To == n.Origin
		if touchesOrigin {
			if a.Cost < 100 || a.Cost > 200 {
				t.Errorf("origin link cost %v outside [100,200]", a.Cost)
			}
		} else if a.Cost < 1 || a.Cost > 20 {
			t.Errorf("link cost %v outside [1,20]", a.Cost)
		}
	}
	// Symmetric costs on opposite arcs.
	for id := 0; id < n.G.NumArcs(); id++ {
		a := n.G.Arc(id)
		for id2 := 0; id2 < n.G.NumArcs(); id2++ {
			b := n.G.Arc(id2)
			if b.From == a.To && b.To == a.From && b.Cost != a.Cost {
				t.Fatalf("asymmetric costs on link %d-%d: %v vs %v", a.From, a.To, a.Cost, b.Cost)
			}
		}
	}
}

func TestCapacityHelpers(t *testing.T) {
	n := Abovenet(5)
	n.SetUniformCapacity(7)
	for id := 0; id < n.G.NumArcs(); id++ {
		if n.G.Arc(id).Cap != 7 {
			t.Fatalf("arc %d cap = %v, want 7", id, n.G.Arc(id).Cap)
		}
	}
	n.SetUnlimitedCapacity()
	for id := 0; id < n.G.NumArcs(); id++ {
		if !math.IsInf(n.G.Arc(id).Cap, 1) {
			t.Fatalf("arc %d cap = %v, want +Inf", id, n.G.Arc(id).Cap)
		}
	}
}

func TestAugmentFeasibility(t *testing.T) {
	n := Abovenet(7)
	n.AssignCosts(rand.New(rand.NewSource(2)), 100, 200, 1, 20)
	n.SetUniformCapacity(10)
	demand := make([]float64, len(n.Edges))
	for k := range demand {
		demand[k] = float64(100 * (k + 1))
	}
	if err := n.AugmentFeasibility(demand); err != nil {
		t.Fatal(err)
	}
	// Every arc on each origin->edge minimum-hop path got its capacity
	// raised by that edge's demand (paths may share arcs, so the lower
	// bound below is per-edge, not cumulative).
	unit := n.G.Clone()
	for id := 0; id < unit.NumArcs(); id++ {
		unit.SetArcCost(id, 1)
	}
	tree := graph.Dijkstra(unit, n.Origin, nil, nil)
	for k, e := range n.Edges {
		p, ok := tree.PathTo(n.G, e)
		if !ok {
			t.Fatalf("edge %d unreachable", e)
		}
		for _, id := range p.Arcs {
			if n.G.Arc(id).Cap < 10+demand[k] {
				t.Errorf("arc %d on path to edge %d not augmented: cap %v", id, e, n.G.Arc(id).Cap)
			}
		}
	}

	if err := n.AugmentFeasibility([]float64{1}); err == nil {
		t.Error("wrong demand length accepted")
	}
}

func TestParseEdgeList(t *testing.T) {
	src := `
# tiny triangle plus a stub
0 1 2.5 100
1 2 3.0
0 2
2 3 1 50
`
	n, err := ParseEdgeList(strings.NewReader(src), "tiny", 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.G.NumNodes() != 4 || n.G.NumArcs() != 8 {
		t.Fatalf("parsed %d nodes %d arcs, want 4 and 8", n.G.NumNodes(), n.G.NumArcs())
	}
	if n.Origin != 3 {
		t.Errorf("origin = %d, want the degree-1 node 3", n.Origin)
	}
	a := n.G.Arc(0)
	if a.Cost != 2.5 || a.Cap != 100 {
		t.Errorf("first arc = %+v, want cost 2.5 cap 100", a)
	}
	if !math.IsInf(n.G.Arc(4).Cap, 1) {
		t.Errorf("default capacity should be unlimited, got %v", n.G.Arc(4).Cap)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	for name, src := range map[string]string{
		"empty":        "",
		"one field":    "0",
		"bad node":     "a 1",
		"bad node 2":   "0 b",
		"self loop":    "0 0",
		"negative":     "-1 2",
		"bad cost":     "0 1 x",
		"bad capacity": "0 1 1 x",
		"disconnected": "0 1\n2 3",
	} {
		if _, err := ParseEdgeList(strings.NewReader(src), "x", 1); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestInternal(t *testing.T) {
	n := Abovenet(9)
	if n.Internal(n.Origin) {
		t.Error("origin reported internal")
	}
	for _, e := range n.Edges {
		if n.Internal(e) {
			t.Errorf("edge node %d reported internal", e)
		}
	}
	count := 0
	for v := 0; v < n.G.NumNodes(); v++ {
		if n.Internal(v) {
			count++
		}
	}
	if count != n.G.NumNodes()-1-len(n.Edges) {
		t.Errorf("internal count = %d, want %d", count, n.G.NumNodes()-1-len(n.Edges))
	}
}

// TestInternalLiteralAndIndexedAgree pins the two Internal paths to each
// other: a literal-constructed Network (no role index) must answer exactly
// like the same network after IndexRoles, and re-indexing after a role
// change must track the new designation.
func TestInternalLiteralAndIndexedAgree(t *testing.T) {
	gen := Abovenet(9)
	lit := &Network{Name: gen.Name, G: gen.G, Origin: gen.Origin, Edges: gen.Edges}
	for v := 0; v < gen.G.NumNodes(); v++ {
		if lit.Internal(v) != gen.Internal(v) {
			t.Errorf("node %d: literal says %v, indexed says %v", v, lit.Internal(v), gen.Internal(v))
		}
	}
	// Re-designate: promote an internal node to edge node and re-index.
	var promoted graph.NodeID = -1
	for v := 0; v < gen.G.NumNodes(); v++ {
		if gen.Internal(v) {
			promoted = v
			break
		}
	}
	if promoted < 0 {
		t.Fatal("no internal node to promote")
	}
	gen.Edges = append(gen.Edges, promoted)
	gen.IndexRoles()
	if gen.Internal(promoted) {
		t.Errorf("node %d still internal after promotion and re-index", promoted)
	}
}
