package topo

import (
	"strings"
	"testing"
)

const sampleGML = `
graph [
  label "toy"
  node [
    id 0
    label "NYC"
    Longitude -74.0
  ]
  node [
    id 2
    label "CHI"
  ]
  node [
    id 5
    label "SEA"
  ]
  node [
    id 7
    label "LAX"
  ]
  edge [
    source 0
    target 2
    LinkSpeed "1.0"
  ]
  edge [
    source 2
    target 5
  ]
  edge [
    source 5
    target 0
  ]
  edge [
    source 0
    target 5
  ]
  edge [
    source 7
    target 5
  ]
  edge [
    source 7
    target 7
  ]
]
`

func TestParseGML(t *testing.T) {
	n, err := ParseGML(strings.NewReader(sampleGML), "toy", 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.G.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", n.G.NumNodes())
	}
	// 4 distinct undirected links (reverse listing 0-5 of link 5-0
	// collapsed, self-loop 7-7 dropped) -> 8 arcs.
	if n.G.NumArcs() != 8 {
		t.Errorf("arcs = %d, want 8", n.G.NumArcs())
	}
	if !n.G.Connected() {
		t.Error("parsed graph disconnected")
	}
	// Node with GML id 7 (dense 3) has degree 1 -> origin.
	if got := n.G.UndirectedDegree(n.Origin); got != 1 {
		t.Errorf("origin degree = %d, want 1", got)
	}
	if len(n.Edges) != 2 {
		t.Errorf("edge nodes = %d, want 2", len(n.Edges))
	}
}

func TestParseGMLErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{"empty", "", "no nodes"},
		{"no nodes", "graph [ edge [ source 0 target 1 ] ]", "no nodes"},
		{"bad edge", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 ] ]", "missing source/target"},
		{"unknown node", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 9 ] ]", "unknown node"},
		{"disconnected", "graph [ node [ id 0 ] node [ id 1 ] node [ id 2 ] node [ id 3 ] edge [ source 0 target 1 ] edge [ source 2 target 3 ] ]", "not connected"},
		{"unbalanced", "graph [ node [ id 0 ] ] ]", "unbalanced"},
		{"negative weight", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 weight -2 ] ]", "negative"},
		{"negative value", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 value -0.5 ] ]", "negative"},
		{"NaN weight", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 weight NaN ] ]", "NaN"},
		{"non-numeric weight", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 weight fast ] ]", "not a number"},
		{"duplicate directed edge", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] edge [ source 0 target 1 ] ]", "duplicate directed edge"},
		{"duplicate directed self-loop", "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] edge [ source 1 target 1 ] edge [ source 1 target 1 ] ]", "duplicate directed edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGML(strings.NewReader(tc.src), "x", 1)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseGMLWeights(t *testing.T) {
	// weight/value keys become arc costs; edges without one default to 1,
	// and a reverse listing keeps the first direction's weight.
	const src = `graph [
	  node [ id 0 ] node [ id 1 ] node [ id 2 ]
	  edge [ source 0 target 1 weight 2.5 ]
	  edge [ source 1 target 2 value 4 ]
	  edge [ source 2 target 1 weight 9 ]
	  edge [ source 2 target 0 ]
	]`
	n, err := ParseGML(strings.NewReader(src), "weighted", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.G.NumArcs(); got != 6 {
		t.Fatalf("arcs = %d, want 6", got)
	}
	wantCost := map[[2]int]float64{
		{0, 1}: 2.5, {1, 0}: 2.5,
		{1, 2}: 4, {2, 1}: 4,
		{2, 0}: 1, {0, 2}: 1,
	}
	for id := 0; id < n.G.NumArcs(); id++ {
		a := n.G.Arc(id)
		if want := wantCost[[2]int{a.From, a.To}]; a.Cost != want {
			t.Errorf("arc %d->%d cost = %v, want %v", a.From, a.To, a.Cost, want)
		}
	}
}

func TestParseGMLRoundTripWithCosts(t *testing.T) {
	// Parsed networks integrate with the cost/capacity helpers.
	n, err := ParseGML(strings.NewReader(sampleGML), "toy", 1)
	if err != nil {
		t.Fatal(err)
	}
	n.SetUniformCapacity(5)
	for id := 0; id < n.G.NumArcs(); id++ {
		if n.G.Arc(id).Cap != 5 {
			t.Fatalf("capacity helper failed on parsed graph")
		}
	}
}
