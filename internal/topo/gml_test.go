package topo

import (
	"strings"
	"testing"
)

const sampleGML = `
graph [
  label "toy"
  node [
    id 0
    label "NYC"
    Longitude -74.0
  ]
  node [
    id 2
    label "CHI"
  ]
  node [
    id 5
    label "SEA"
  ]
  node [
    id 7
    label "LAX"
  ]
  edge [
    source 0
    target 2
    LinkSpeed "1.0"
  ]
  edge [
    source 2
    target 5
  ]
  edge [
    source 5
    target 0
  ]
  edge [
    source 5
    target 0
  ]
  edge [
    source 7
    target 5
  ]
  edge [
    source 7
    target 7
  ]
]
`

func TestParseGML(t *testing.T) {
	n, err := ParseGML(strings.NewReader(sampleGML), "toy", 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.G.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", n.G.NumNodes())
	}
	// 4 distinct undirected links (duplicate 5-0 collapsed, self-loop
	// 7-7 dropped) -> 8 arcs.
	if n.G.NumArcs() != 8 {
		t.Errorf("arcs = %d, want 8", n.G.NumArcs())
	}
	if !n.G.Connected() {
		t.Error("parsed graph disconnected")
	}
	// Node with GML id 7 (dense 3) has degree 1 -> origin.
	if got := n.G.UndirectedDegree(n.Origin); got != 1 {
		t.Errorf("origin degree = %d, want 1", got)
	}
	if len(n.Edges) != 2 {
		t.Errorf("edge nodes = %d, want 2", len(n.Edges))
	}
}

func TestParseGMLErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no nodes":     "graph [ edge [ source 0 target 1 ] ]",
		"bad edge":     "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 ] ]",
		"unknown node": "graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 9 ] ]",
		"disconnected": "graph [ node [ id 0 ] node [ id 1 ] node [ id 2 ] node [ id 3 ] edge [ source 0 target 1 ] edge [ source 2 target 3 ] ]",
		"unbalanced":   "graph [ node [ id 0 ] ] ]",
	}
	for name, src := range cases {
		if _, err := ParseGML(strings.NewReader(src), "x", 1); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseGMLRoundTripWithCosts(t *testing.T) {
	// Parsed networks integrate with the cost/capacity helpers.
	n, err := ParseGML(strings.NewReader(sampleGML), "toy", 1)
	if err != nil {
		t.Fatal(err)
	}
	n.SetUniformCapacity(5)
	for id := 0; id < n.G.NumArcs(); id++ {
		if n.G.Arc(id).Cap != 5 {
			t.Fatalf("capacity helper failed on parsed graph")
		}
	}
}
