// Package topo builds the evaluation networks of the paper's Section 6 and
// Appendix D: an Abovenet-like ISP topology with a degree-1 origin server
// and low-degree edge nodes, plus generated stand-ins for the Topology-Zoo
// networks of Table 5 (Abvt, Tinet, Deltacom) with their exact node and
// link counts. The real Rocketfuel/Topology-Zoo data files are not
// redistributable here, so the package generates deterministic topologies
// with the same sizes and degree structure; a simple edge-list parser is
// provided for plugging in real data.
package topo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"jcr/internal/graph"
	"jcr/internal/rng"
)

// Network is an evaluation topology with its cache-placement designations.
type Network struct {
	Name string
	G    *graph.Graph
	// Origin is (the gateway to) the origin server, permanently storing
	// the whole catalog; the paper designates a degree-1 node.
	Origin graph.NodeID
	// Edges are the edge nodes: low-degree nodes that receive user
	// requests and host caches.
	Edges []graph.NodeID

	// notInternal is the role lookup built by IndexRoles: true for the
	// origin and every edge node. Nil (a literal-constructed Network)
	// falls back to scanning Edges.
	notInternal []bool
}

// IndexRoles precomputes the node-role lookup behind Internal, turning it
// from an O(|Edges|) scan into an array read. The package's constructors
// call it; callers that re-designate Origin or Edges afterwards must call
// it again (or leave the lookup unbuilt for the scanning fallback).
func (n *Network) IndexRoles() {
	ni := make([]bool, n.G.NumNodes())
	if n.Origin >= 0 && n.Origin < len(ni) {
		ni[n.Origin] = true
	}
	for _, e := range n.Edges {
		if e >= 0 && e < len(ni) {
			ni[e] = true
		}
	}
	n.notInternal = ni
}

// Internal reports whether v is an internal router (neither origin nor
// edge node).
func (n *Network) Internal(v graph.NodeID) bool {
	if v >= 0 && v < len(n.notInternal) {
		return !n.notInternal[v]
	}
	if v == n.Origin {
		return false
	}
	for _, e := range n.Edges {
		if e == v {
			return false
		}
	}
	return true
}

// Generate builds a connected undirected topology with exactly the given
// node and edge counts, deterministic in seed. A preferential-attachment
// tree creates hub-and-leaf structure (so low-degree nodes exist for the
// origin/edge designations); extra links are added between non-leaf nodes.
// numEdgeNodes low-degree nodes are designated edge nodes, following the
// paper's rule: the lowest-degree node is the origin and the next lowest
// are the edge nodes.
func Generate(name string, nodes, links, numEdgeNodes int, seed int64) (*Network, error) {
	if nodes < 3 {
		return nil, fmt.Errorf("topo: need at least 3 nodes, got %d", nodes)
	}
	if links < nodes-1 {
		return nil, fmt.Errorf("topo: %d links cannot connect %d nodes", links, nodes)
	}
	maxLinks := nodes * (nodes - 1) / 2
	if links > maxLinks {
		return nil, fmt.Errorf("topo: %d links exceed simple-graph maximum %d", links, maxLinks)
	}
	rng := rng.New(seed)
	g := graph.New(nodes)
	deg := make([]int, nodes)
	adjacent := make(map[[2]int]bool)
	addLink := func(u, v int) {
		g.AddEdge(u, v, 1, graph.Unlimited)
		deg[u]++
		deg[v]++
		if u > v {
			u, v = v, u
		}
		adjacent[[2]int{u, v}] = true
	}
	// Preferential-attachment spanning tree: creates the hub-and-stub
	// structure of PoP-level ISP maps.
	for v := 1; v < nodes; v++ {
		total := 0
		for u := 0; u < v; u++ {
			total += deg[u] + 1
		}
		pick := rng.Intn(total)
		u := 0
		for acc := 0; u < v; u++ {
			acc += deg[u] + 1
			if pick < acc {
				break
			}
		}
		addLink(u, v)
	}
	// Reserve one degree-1 stub for the origin server (the paper
	// designates a degree-1 node as the gateway to the origin); the
	// remaining leaves are meshed up by the extra links so the core
	// looks like a backbone, leaving low-degree (<= 3) nodes to serve
	// as edge caches that other traffic can transit.
	reserved := make(map[int]bool, 1)
	for v := 0; v < nodes; v++ {
		if deg[v] == 1 {
			reserved[v] = true
			break
		}
	}
	if len(reserved) == 0 {
		return nil, fmt.Errorf("topo: tree has no leaf for the origin")
	}
	for g.NumArcs()/2 < links {
		// Lift the lowest-degree unreserved node first, breaking ties
		// randomly, so leaves join the mesh before hubs grow further.
		u := -1
		for v := 0; v < nodes; v++ {
			if reserved[v] {
				continue
			}
			if u < 0 || deg[v] < deg[u] || (deg[v] == deg[u] && rng.Intn(2) == 0) {
				u = v
			}
		}
		placed := false
		for attempt := 0; attempt < 4*nodes; attempt++ {
			v := rng.Intn(nodes)
			if v == u || reserved[v] {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			if adjacent[[2]int{a, b}] {
				continue
			}
			addLink(u, v)
			placed = true
			break
		}
		if !placed {
			// u is saturated against all unreserved nodes; fall back
			// to any missing unreserved pair.
			if w, x, ok := anyMissingUnreservedPair(nodes, adjacent, reserved); ok {
				addLink(w, x)
				continue
			}
			return nil, fmt.Errorf("topo: cannot reach %d links with %d reserved stubs", links, len(reserved))
		}
	}
	net := &Network{Name: name, G: g}
	order := g.NodesByDegree()
	net.Origin = order[0]
	for _, v := range order[1:] {
		if len(net.Edges) >= numEdgeNodes {
			break
		}
		net.Edges = append(net.Edges, v)
	}
	if len(net.Edges) < numEdgeNodes {
		return nil, fmt.Errorf("topo: only %d candidate edge nodes, want %d", len(net.Edges), numEdgeNodes)
	}
	net.IndexRoles()
	return net, nil
}

func anyMissingUnreservedPair(nodes int, adjacent map[[2]int]bool, reserved map[int]bool) (int, int, bool) {
	for u := 0; u < nodes; u++ {
		if reserved[u] {
			continue
		}
		for v := u + 1; v < nodes; v++ {
			if reserved[v] || adjacent[[2]int{u, v}] {
				continue
			}
			return u, v, true
		}
	}
	return 0, 0, false
}

// The canonical evaluation networks. Abovenet models the Rocketfuel-based
// topology of Fig. 3 (with the paper's default of designating the
// low-degree nodes as edge caches); Abvt, Tinet and Deltacom match the
// sizes in Table 5, which designate 5 edge nodes each.

// Abovenet returns the default Section-6 evaluation network.
func Abovenet(seed int64) *Network {
	n, err := Generate("Abovenet", 23, 31, 9, seed)
	if err != nil {
		//jcrlint:allow lib-panic: programmer-error guard; the canned parameters are statically valid
		panic(err)
	}
	return n
}

// Abvt returns the Table 5 "Abvt" network: 23 nodes, 31 links.
func Abvt(seed int64) *Network {
	n, err := Generate("Abvt", 23, 31, 5, seed)
	if err != nil {
		//jcrlint:allow lib-panic: programmer-error guard; the canned parameters are statically valid
		panic(err)
	}
	return n
}

// Tinet returns the Table 5 "Tinet" network: 53 nodes, 89 links.
func Tinet(seed int64) *Network {
	n, err := Generate("Tinet", 53, 89, 5, seed)
	if err != nil {
		//jcrlint:allow lib-panic: programmer-error guard; the canned parameters are statically valid
		panic(err)
	}
	return n
}

// Deltacom returns the Table 5 "Deltacom" network: 113 nodes, 161 links.
func Deltacom(seed int64) *Network {
	n, err := Generate("Deltacom", 113, 161, 5, seed)
	if err != nil {
		//jcrlint:allow lib-panic: programmer-error guard; the canned parameters are statically valid
		panic(err)
	}
	return n
}

// AssignCosts draws link costs per Section 6: links incident to the origin
// server cost Uniform[originLo, originHi] (the origin is far from users)
// and all other links cost Uniform[lo, hi]. Opposite directions of a link
// get the same cost.
func (n *Network) AssignCosts(rng *rand.Rand, originLo, originHi, lo, hi float64) {
	m := n.G.NumArcs()
	done := make([]bool, m)
	for id := 0; id < m; id++ {
		if done[id] {
			continue
		}
		a := n.G.Arc(id)
		var c float64
		if a.From == n.Origin || a.To == n.Origin {
			c = originLo + rng.Float64()*(originHi-originLo)
		} else {
			c = lo + rng.Float64()*(hi-lo)
		}
		n.G.SetArcCost(id, c)
		done[id] = true
		// The paired reverse arc was added immediately after by
		// AddEdge; find it and give it the same cost.
		for id2 := id + 1; id2 < m; id2++ {
			b := n.G.Arc(id2)
			if !done[id2] && b.From == a.To && b.To == a.From {
				n.G.SetArcCost(id2, c)
				done[id2] = true
				break
			}
		}
	}
}

// SetUniformCapacity assigns every arc the same capacity (the default
// kappa of Section 6, or Table 5's 1 Gbps equivalents).
func (n *Network) SetUniformCapacity(capacity float64) {
	for id := 0; id < n.G.NumArcs(); id++ {
		n.G.SetArcCap(id, capacity)
	}
}

// SetUnlimitedCapacity removes all link capacity constraints (the
// Section 4.1 regime).
func (n *Network) SetUnlimitedCapacity() {
	for id := 0; id < n.G.NumArcs(); id++ {
		n.G.SetArcCap(id, graph.Unlimited)
	}
}

// AugmentFeasibility raises capacities along one cycle-free path from the
// origin to each edge node by that edge node's total demand, the paper's
// construction guaranteeing that every request can be served by the origin
// server as a last resort. The augmented paths are minimum-hop (not
// minimum-cost) paths: the guarantee needs any cycle-free path, and using
// the min-cost tree would make cost-greedy routing capacity-safe by
// construction, hiding the congestion effects the evaluation studies.
// edgeDemand[k] is the total request rate arriving at Edges[k].
func (n *Network) AugmentFeasibility(edgeDemand []float64) error {
	if len(edgeDemand) != len(n.Edges) {
		return fmt.Errorf("topo: %d demands for %d edge nodes", len(edgeDemand), len(n.Edges))
	}
	tree := n.minHopTree()
	for k, e := range n.Edges {
		p, ok := tree.PathTo(n.G, e)
		if !ok {
			return fmt.Errorf("topo: edge node %d unreachable from origin %d", e, n.Origin)
		}
		for _, id := range p.Arcs {
			n.G.SetArcCap(id, n.G.Arc(id).Cap+edgeDemand[k])
		}
	}
	return nil
}

// minHopTree runs a shortest-path computation from the origin with every
// arc cost treated as 1.
func (n *Network) minHopTree() graph.ShortestTree {
	unit := n.G.Clone()
	for id := 0; id < unit.NumArcs(); id++ {
		unit.SetArcCost(id, 1)
	}
	tree := graph.TreeOf(unit, n.Origin)
	// Arc IDs coincide between the clone and the original graph, so the
	// tree's parent arcs are valid in n.G.
	return tree
}

// ParseEdgeList reads an undirected topology from lines of the form
//
//	u v [cost] [capacity]
//
// with '#' comments. Node IDs must be dense integers starting at 0. Cost
// defaults to 1 and capacity to unlimited. numEdgeNodes low-degree nodes
// are designated as in Generate.
func ParseEdgeList(r io.Reader, name string, numEdgeNodes int) (*Network, error) {
	type link struct {
		u, v      int
		cost, cap float64
	}
	var links []link
	maxNode := -1
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("topo: line %d: need at least two fields", lineNo)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad node %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("topo: line %d: bad node %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 || u == v {
			return nil, fmt.Errorf("topo: line %d: invalid link %d-%d", lineNo, u, v)
		}
		l := link{u: u, v: v, cost: 1, cap: graph.Unlimited}
		if len(fields) >= 3 {
			if l.cost, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return nil, fmt.Errorf("topo: line %d: bad cost %q", lineNo, fields[2])
			}
			// Validate here so malformed input files surface as errors
			// rather than tripping graph.AddArc's programmer-error guard.
			if l.cost < 0 || math.IsNaN(l.cost) {
				return nil, fmt.Errorf("topo: line %d: cost %v must be non-negative", lineNo, l.cost)
			}
		}
		if len(fields) >= 4 {
			if l.cap, err = strconv.ParseFloat(fields[3], 64); err != nil {
				return nil, fmt.Errorf("topo: line %d: bad capacity %q", lineNo, fields[3])
			}
		}
		if u > maxNode {
			maxNode = u
		}
		if v > maxNode {
			maxNode = v
		}
		links = append(links, l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topo: %w", err)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("topo: empty edge list")
	}
	g := graph.New(maxNode + 1)
	for _, l := range links {
		g.AddEdge(l.u, l.v, l.cost, l.cap)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topo: parsed topology is not connected")
	}
	net := &Network{Name: name, G: g}
	order := g.NodesByDegree()
	net.Origin = order[0]
	for _, v := range order[1:] {
		if len(net.Edges) >= numEdgeNodes {
			break
		}
		net.Edges = append(net.Edges, v)
	}
	net.IndexRoles()
	return net, nil
}
