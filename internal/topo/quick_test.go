package topo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickParams are random valid Generate parameters.
type quickParams struct {
	nodes, links, edges int
	seed                int64
}

// Generate implements quick.Generator.
func (quickParams) Generate(rng *rand.Rand, size int) reflect.Value {
	nodes := 8 + rng.Intn(40)
	minLinks := nodes - 1
	maxLinks := nodes * (nodes - 1) / 2
	span := maxLinks - minLinks
	if span > 3*nodes {
		span = 3 * nodes // stay in the sparse regime of ISP maps
	}
	links := minLinks + rng.Intn(span+1)
	edges := 1 + rng.Intn(nodes/4+1)
	return reflect.ValueOf(quickParams{nodes: nodes, links: links, edges: edges, seed: rng.Int63()})
}

// Generated topologies always have the requested size, are connected, and
// designate a lowest-degree origin distinct from the edge nodes.
func TestQuickGenerateInvariants(t *testing.T) {
	property := func(p quickParams) bool {
		n, err := Generate("q", p.nodes, p.links, p.edges, p.seed)
		if err != nil {
			// Dense corner cases may legitimately fail; they must not
			// produce a half-built network.
			return n == nil
		}
		if n.G.NumNodes() != p.nodes || n.G.NumArcs() != 2*p.links {
			return false
		}
		if !n.G.Connected() {
			return false
		}
		if len(n.Edges) != p.edges {
			return false
		}
		od := n.G.UndirectedDegree(n.Origin)
		for v := 0; v < p.nodes; v++ {
			if n.G.UndirectedDegree(v) < od {
				return false
			}
		}
		for _, e := range n.Edges {
			if e == n.Origin {
				return false
			}
		}
		// Determinism: the same seed rebuilds the same arcs.
		m, err := Generate("q", p.nodes, p.links, p.edges, p.seed)
		if err != nil {
			return false
		}
		for id := 0; id < n.G.NumArcs(); id++ {
			if n.G.Arc(id) != m.G.Arc(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Cost assignment keeps every arc within its band and symmetric across
// directions, for any seed.
func TestQuickAssignCostsBands(t *testing.T) {
	property := func(seed int64) bool {
		n := Abovenet(1 + (seed&0xff)%7)
		n.AssignCosts(rand.New(rand.NewSource(seed)), 100, 200, 1, 20)
		for id := 0; id < n.G.NumArcs(); id++ {
			a := n.G.Arc(id)
			touches := a.From == n.Origin || a.To == n.Origin
			if touches && (a.Cost < 100 || a.Cost > 200) {
				return false
			}
			if !touches && (a.Cost < 1 || a.Cost > 20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}
