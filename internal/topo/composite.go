package topo

import (
	"fmt"
	"sort"

	"jcr/internal/graph"
)

// gatewaysPerSeam is how many undirected gateway links stitch each pair of
// consecutive blocks in a composite network: two, so no seam is a single
// point of failure and the boundary coordinator always has a priced
// alternative.
const gatewaysPerSeam = 2

// CompositeNetwork is a Network stitched from identical copies of a base
// network, plus the block structure the partition-aware solve pipeline
// consumes: which block every node belongs to (the natural cell
// assignment), each block's origin (regional catalog mirrors), and the
// gateway links that couple consecutive blocks.
type CompositeNetwork struct {
	*Network
	// Blocks is the number of stitched copies (the K of Composite).
	Blocks int
	// BlockSize is the node count of one block; node v belongs to block
	// v / BlockSize.
	BlockSize int
	// BlockOrigins[b] is block b's copy of the base origin. BlockOrigins[0]
	// is the composite's Network.Origin.
	BlockOrigins []graph.NodeID
	// GatewayLinks lists the stitching edges as (u, v) global node pairs,
	// seam by seam; each is one undirected link (two arcs) of G.
	GatewayLinks [][2]graph.NodeID
	// Assign maps every node to its block index, ready for the cell
	// decomposition (graph.NewCellSet).
	Assign []int
}

// Composite stitches k copies of base into one network: block b occupies
// nodes [b*n, (b+1)*n) with base's arc list repeated verbatim (same order,
// same costs and capacities), and consecutive blocks are joined by
// gatewaysPerSeam undirected links between deterministic high-degree core
// nodes. Composite(base, 1) adds no gateway links and is isomorphic to base
// node-for-node and arc-for-arc (the property test pins this). Every
// block's copy of the base origin is reported in BlockOrigins so callers
// can pin regional catalog mirrors, which keeps each cell's subproblem
// well-posed under decomposition.
//
// k < 1 is rejected, as is a base without the two distinct gateway
// candidates a seam needs; the constructed seam count is validated against
// gatewaysPerSeam*(k-1) before returning.
func Composite(base *Network, k int) (*CompositeNetwork, error) {
	if k < 1 {
		return nil, fmt.Errorf("topo: composite needs at least 1 block, got %d", k)
	}
	if base == nil || base.G == nil || base.G.NumNodes() == 0 {
		return nil, fmt.Errorf("topo: composite needs a non-empty base network")
	}
	n := base.G.NumNodes()
	gws := gatewayCandidates(base)
	if k > 1 && len(gws) < gatewaysPerSeam {
		return nil, fmt.Errorf("topo: base %q has %d gateway candidates, need %d", base.Name, len(gws), gatewaysPerSeam)
	}
	g := graph.New(n * k)
	comp := &CompositeNetwork{
		Network: &Network{
			Name: fmt.Sprintf("%s-x%d", base.Name, k),
			G:    g,
		},
		Blocks:    k,
		BlockSize: n,
		Assign:    make([]int, n*k),
	}
	// Blocks first, arc order matching the base verbatim per block, so
	// block b's arc id for base arc e is b*base.NumArcs() + e.
	for b := 0; b < k; b++ {
		off := b * n
		for id := 0; id < base.G.NumArcs(); id++ {
			a := base.G.Arc(id)
			g.AddArc(a.From+off, a.To+off, a.Cost, a.Cap)
		}
		for v := 0; v < n; v++ {
			comp.Assign[off+v] = b
		}
		comp.BlockOrigins = append(comp.BlockOrigins, base.Origin+off)
		for _, e := range base.Edges {
			comp.Edges = append(comp.Edges, e+off)
		}
	}
	comp.Origin = comp.BlockOrigins[0]
	// Seams after all blocks, so block-local arc ids stay aligned with the
	// base. Gateway links inherit the mean base link cost (they are core
	// links; AssignCosts re-prices everything later anyway) and start
	// uncapacitated like base construction does.
	seamCost := meanArcCost(base.G)
	for b := 0; b+1 < k; b++ {
		for s := 0; s < gatewaysPerSeam; s++ {
			u := gws[s] + b*n
			v := gws[(s+1)%len(gws)] + (b+1)*n
			g.AddEdge(u, v, seamCost, graph.Unlimited)
			comp.GatewayLinks = append(comp.GatewayLinks, [2]graph.NodeID{u, v})
		}
	}
	if got, want := len(comp.GatewayLinks), gatewaysPerSeam*(k-1); got != want {
		return nil, fmt.Errorf("topo: composite built %d gateway links, want %d", got, want)
	}
	comp.IndexRoles()
	// Every block origin is an origin, not an internal router; IndexRoles
	// only knows the single Network.Origin.
	for _, o := range comp.BlockOrigins {
		comp.notInternal[o] = true
	}
	return comp, nil
}

// gatewayCandidates picks the base nodes that carry seams: the
// highest-degree internal routers (ties broken by lower node ID), the nodes
// an ISP would interconnect at. Falls back to any non-origin node when the
// base designates everything as origin or edge.
func gatewayCandidates(base *Network) []graph.NodeID {
	var cands []graph.NodeID
	for v := 0; v < base.G.NumNodes(); v++ {
		if base.Internal(v) {
			cands = append(cands, v)
		}
	}
	if len(cands) < gatewaysPerSeam {
		cands = cands[:0]
		for v := 0; v < base.G.NumNodes(); v++ {
			if v != base.Origin {
				cands = append(cands, v)
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		da, db := base.G.UndirectedDegree(cands[a]), base.G.UndirectedDegree(cands[b])
		if da != db {
			return da > db
		}
		return cands[a] < cands[b]
	})
	if len(cands) > gatewaysPerSeam {
		cands = cands[:gatewaysPerSeam]
	}
	return cands
}

// meanArcCost averages the arc costs of a graph (1 for an empty graph,
// matching the generators' default link cost).
func meanArcCost(g *graph.Graph) float64 {
	if g.NumArcs() == 0 {
		return 1
	}
	var sum float64
	for id := 0; id < g.NumArcs(); id++ {
		sum += g.Arc(id).Cost
	}
	return sum / float64(g.NumArcs())
}

// AugmentBlockFeasibility raises capacities from every block's origin to
// that block's edge nodes by the edge node's demand, the per-block
// counterpart of Network.AugmentFeasibility: with regional catalog mirrors
// pinned at the block origins, every request can be served inside its own
// block as a last resort. edgeDemand aligns with comp.Edges.
func (comp *CompositeNetwork) AugmentBlockFeasibility(edgeDemand []float64) error {
	if len(edgeDemand) != len(comp.Edges) {
		return fmt.Errorf("topo: %d demands for %d edge nodes", len(edgeDemand), len(comp.Edges))
	}
	perBlock := len(comp.Edges) / comp.Blocks
	savedOrigin := comp.Origin
	defer func() { comp.Origin = savedOrigin }()
	for b := 0; b < comp.Blocks; b++ {
		comp.Origin = comp.BlockOrigins[b]
		blockDemand := make([]float64, len(comp.Edges))
		copy(blockDemand[b*perBlock:(b+1)*perBlock], edgeDemand[b*perBlock:(b+1)*perBlock])
		if err := comp.AugmentFeasibility(blockDemand); err != nil {
			return err
		}
	}
	return nil
}
