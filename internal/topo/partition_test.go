package topo

import (
	"reflect"
	"testing"
)

func TestPartitionBasics(t *testing.T) {
	net := Abovenet(1)
	for _, k := range []int{1, 2, 3, 4, 7} {
		assign, err := Partition(net.G, k)
		if err != nil {
			t.Fatalf("Partition(k=%d): %v", k, err)
		}
		if len(assign) != net.G.NumNodes() {
			t.Fatalf("k=%d: assignment covers %d of %d nodes", k, len(assign), net.G.NumNodes())
		}
		sizes := make([]int, k)
		for v, c := range assign {
			if c < 0 || c >= k {
				t.Fatalf("k=%d: node %d assigned out-of-range cell %d", k, v, c)
			}
			sizes[c]++
		}
		for c, s := range sizes {
			if s == 0 {
				t.Errorf("k=%d: cell %d is empty", k, c)
			}
		}
		// Balance: no cell more than twice its fair share.
		fair := net.G.NumNodes() / k
		for c, s := range sizes {
			if fair > 1 && s > 2*fair+1 {
				t.Errorf("k=%d: cell %d has %d nodes, fair share %d", k, c, s, fair)
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	net := Tinet(3)
	a, err := Partition(net.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(net.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Partition is not deterministic:\n%v\n%v", a, b)
	}
}

func TestPartitionSingleCell(t *testing.T) {
	net := Abovenet(1)
	assign, err := Partition(net.G, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range assign {
		if c != 0 {
			t.Fatalf("k=1: node %d in cell %d", v, c)
		}
	}
	if cut := CutArcs(net.G, assign); cut != 0 {
		t.Fatalf("k=1 cut %d arcs", cut)
	}
}

func TestPartitionErrors(t *testing.T) {
	net := Abovenet(1)
	if _, err := Partition(net.G, 0); err == nil {
		t.Error("Partition accepted k=0")
	}
	if _, err := Partition(net.G, -2); err == nil {
		t.Error("Partition accepted negative k")
	}
	if _, err := Partition(net.G, net.G.NumNodes()+1); err == nil {
		t.Error("Partition accepted more cells than nodes")
	}
	if _, err := Partition(nil, 2); err == nil {
		t.Error("Partition accepted a nil graph")
	}
}

// TestPartitionCompositeCut pins cut quality where the right answer is
// known: a composite network's blocks are joined only by its gateway
// links, so an edge-cut bisection into Blocks cells should cut a small
// multiple of the seam arcs, not a block's worth of internal links.
func TestPartitionCompositeCut(t *testing.T) {
	comp, err := Composite(Abovenet(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := Partition(comp.G, comp.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	seamArcs := 2 * len(comp.GatewayLinks)
	if cut := CutArcs(comp.G, assign); cut > 3*seamArcs {
		t.Errorf("bisection cut %d arcs; the block structure needs only %d", cut, seamArcs)
	}
}
