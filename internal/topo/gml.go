package topo

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"jcr/internal/graph"
)

// ParseGML reads a topology in the GML dialect used by the Internet
// Topology Zoo (the source of the paper's Table 5 networks: Abvt, Tinet,
// Deltacom), so the generated stand-ins can be replaced with the real
// datasets. Only the structure is consumed: `node [ id N ]` and
// `edge [ source A target B ]` blocks; labels and geography are ignored.
// Node ids may be sparse; they are remapped to dense indices. Self-loops
// are dropped and an edge listed in both directions collapses to one
// undirected link (keeping the first direction's weight), matching how the
// paper counts links; an exact repeat of the same directed edge is a
// malformed file and rejected, as is a negative or non-numeric edge
// weight/value — fault scenarios mutate topologies, so bad inputs must
// fail loudly rather than seed a run with garbage. Costs default to 1 when
// no weight/value key is present and capacities to unlimited (assign them
// with AssignCosts / SetUniformCapacity afterwards).
func ParseGML(r io.Reader, name string, numEdgeNodes int) (*Network, error) {
	type edge struct {
		source, target int
		cost           float64
	}
	var edges []edge
	ids := map[int]int{} // GML id -> dense index

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	// Tiny tokenizer: GML is whitespace-separated words and brackets.
	var tokens []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		tokens = append(tokens, strings.Fields(line)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topo: gml: %w", err)
	}

	// skipBlock consumes a balanced [ ... ] starting at position i of an
	// opening bracket, returning the position after the close.
	var parseInt = func(s string) (int, bool) {
		v, err := strconv.Atoi(s)
		return v, err == nil
	}
	i := 0
	depth := 0
	for i < len(tokens) {
		tok := tokens[i]
		switch tok {
		case "[":
			depth++
			i++
		case "]":
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("topo: gml: unbalanced brackets")
			}
			i++
		case "node":
			// Expect: node [ ... id N ... ]
			j := i + 1
			if j >= len(tokens) || tokens[j] != "[" {
				return nil, fmt.Errorf("topo: gml: node without block at token %d", i)
			}
			id := -1 << 30
			d := 0
			for ; j < len(tokens); j++ {
				switch tokens[j] {
				case "[":
					d++
				case "]":
					d--
				case "id":
					if d == 1 && j+1 < len(tokens) {
						if v, ok := parseInt(tokens[j+1]); ok {
							id = v
						}
					}
				}
				if d == 0 && j > i+1 {
					break
				}
			}
			if id == -1<<30 {
				return nil, fmt.Errorf("topo: gml: node block without id")
			}
			if _, dup := ids[id]; !dup {
				ids[id] = len(ids)
			}
			i = j + 1
		case "edge":
			j := i + 1
			if j >= len(tokens) || tokens[j] != "[" {
				return nil, fmt.Errorf("topo: gml: edge without block at token %d", i)
			}
			src, dst := -1<<30, -1<<30
			cost := 1.0
			d := 0
			for ; j < len(tokens); j++ {
				switch tokens[j] {
				case "[":
					d++
				case "]":
					d--
				case "source":
					if d == 1 && j+1 < len(tokens) {
						if v, ok := parseInt(tokens[j+1]); ok {
							src = v
						}
					}
				case "target":
					if d == 1 && j+1 < len(tokens) {
						if v, ok := parseInt(tokens[j+1]); ok {
							dst = v
						}
					}
				case "weight", "value":
					if d == 1 && j+1 < len(tokens) {
						w, err := strconv.ParseFloat(tokens[j+1], 64)
						if err != nil {
							return nil, fmt.Errorf("topo: gml: edge %s %q is not a number", tokens[j], tokens[j+1])
						}
						if w < 0 || math.IsNaN(w) {
							return nil, fmt.Errorf("topo: gml: edge %s %v is negative or NaN", tokens[j], w)
						}
						cost = w
					}
				}
				if d == 0 && j > i+1 {
					break
				}
			}
			if src == -1<<30 || dst == -1<<30 {
				return nil, fmt.Errorf("topo: gml: edge block missing source/target")
			}
			edges = append(edges, edge{source: src, target: dst, cost: cost})
			i = j + 1
		default:
			i++
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("topo: gml: no nodes found")
	}
	g := graph.New(len(ids))
	seen := map[[2]int]bool{}
	seenDirected := map[[2]int]bool{}
	for _, e := range edges {
		u, okU := ids[e.source]
		v, okV := ids[e.target]
		if !okU || !okV {
			return nil, fmt.Errorf("topo: gml: edge references unknown node %d-%d", e.source, e.target)
		}
		if seenDirected[[2]int{e.source, e.target}] {
			return nil, fmt.Errorf("topo: gml: duplicate directed edge %d -> %d", e.source, e.target)
		}
		seenDirected[[2]int{e.source, e.target}] = true
		if u == v {
			continue // self-loop
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue // reverse listing of an already-added undirected link
		}
		seen[[2]int{a, b}] = true
		g.AddEdge(u, v, e.cost, graph.Unlimited)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topo: gml: topology is not connected")
	}
	net := &Network{Name: name, G: g}
	order := g.NodesByDegree()
	net.Origin = order[0]
	for _, v := range order[1:] {
		if len(net.Edges) >= numEdgeNodes {
			break
		}
		net.Edges = append(net.Edges, v)
	}
	net.IndexRoles()
	return net, nil
}
