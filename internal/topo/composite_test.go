package topo

import (
	"testing"

	"jcr/internal/graph"
)

// TestCompositeIdentityIsomorphic is the satellite property test:
// Composite(base, 1) is isomorphic to base node-for-node and arc-for-arc —
// same node count, the identical arc list in the identical order, the same
// role designations, and no gateway links.
func TestCompositeIdentityIsomorphic(t *testing.T) {
	base := Abovenet(7)
	comp, err := Composite(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Blocks != 1 || comp.BlockSize != base.G.NumNodes() {
		t.Fatalf("Blocks=%d BlockSize=%d, want 1 and %d", comp.Blocks, comp.BlockSize, base.G.NumNodes())
	}
	if len(comp.GatewayLinks) != 0 {
		t.Fatalf("K=1 composite has %d gateway links", len(comp.GatewayLinks))
	}
	if comp.G.NumNodes() != base.G.NumNodes() {
		t.Fatalf("node count %d, want %d", comp.G.NumNodes(), base.G.NumNodes())
	}
	if comp.G.NumArcs() != base.G.NumArcs() {
		t.Fatalf("arc count %d, want %d", comp.G.NumArcs(), base.G.NumArcs())
	}
	for id := 0; id < base.G.NumArcs(); id++ {
		if a, b := comp.G.Arc(id), base.G.Arc(id); a != b {
			t.Fatalf("arc %d = %+v, want %+v", id, a, b)
		}
	}
	if comp.Origin != base.Origin {
		t.Errorf("origin %d, want %d", comp.Origin, base.Origin)
	}
	if len(comp.Edges) != len(base.Edges) {
		t.Fatalf("%d edge nodes, want %d", len(comp.Edges), len(base.Edges))
	}
	for i := range base.Edges {
		if comp.Edges[i] != base.Edges[i] {
			t.Errorf("edge node %d = %d, want %d", i, comp.Edges[i], base.Edges[i])
		}
	}
	for v := 0; v < base.G.NumNodes(); v++ {
		if comp.Internal(v) != base.Internal(v) {
			t.Errorf("node %d internal=%v, base says %v", v, comp.Internal(v), base.Internal(v))
		}
	}
}

func TestCompositeStructure(t *testing.T) {
	base := Abovenet(1)
	const k = 4
	comp, err := Composite(base, k)
	if err != nil {
		t.Fatal(err)
	}
	n, m := base.G.NumNodes(), base.G.NumArcs()
	if comp.G.NumNodes() != k*n {
		t.Fatalf("node count %d, want %d", comp.G.NumNodes(), k*n)
	}
	wantArcs := k*m + 2*gatewaysPerSeam*(k-1)
	if comp.G.NumArcs() != wantArcs {
		t.Fatalf("arc count %d, want %d", comp.G.NumArcs(), wantArcs)
	}
	if len(comp.GatewayLinks) != gatewaysPerSeam*(k-1) {
		t.Fatalf("%d gateway links, want %d", len(comp.GatewayLinks), gatewaysPerSeam*(k-1))
	}
	if !comp.G.Connected() {
		t.Fatal("composite is not connected")
	}
	// Each block repeats the base arc list verbatim at its offset.
	for b := 0; b < k; b++ {
		for id := 0; id < m; id++ {
			got := comp.G.Arc(b*m + id)
			want := base.G.Arc(id)
			if got.From != want.From+b*n || got.To != want.To+b*n || got.Cost != want.Cost {
				t.Fatalf("block %d arc %d = %+v, want offset copy of %+v", b, id, got, want)
			}
		}
	}
	// Assignment matches block membership; gateway links cross blocks.
	for v, c := range comp.Assign {
		if c != v/n {
			t.Fatalf("node %d assigned block %d, want %d", v, c, v/n)
		}
	}
	for _, gl := range comp.GatewayLinks {
		if comp.Assign[gl[0]] == comp.Assign[gl[1]] {
			t.Errorf("gateway link %v does not cross blocks", gl)
		}
	}
	if len(comp.BlockOrigins) != k {
		t.Fatalf("%d block origins, want %d", len(comp.BlockOrigins), k)
	}
	for b, o := range comp.BlockOrigins {
		if o != base.Origin+b*n {
			t.Errorf("block %d origin %d, want %d", b, o, base.Origin+b*n)
		}
		if comp.Internal(o) {
			t.Errorf("block origin %d reported as internal router", o)
		}
	}
}

func TestCompositeRejectsBadK(t *testing.T) {
	base := Abovenet(1)
	for _, k := range []int{0, -1} {
		if _, err := Composite(base, k); err == nil {
			t.Errorf("Composite accepted k=%d", k)
		}
	}
	if _, err := Composite(nil, 2); err == nil {
		t.Error("Composite accepted a nil base")
	}
	if _, err := Composite(&Network{Name: "empty", G: graph.New(0)}, 2); err == nil {
		t.Error("Composite accepted an empty base")
	}
}

func TestAugmentBlockFeasibility(t *testing.T) {
	base := Abovenet(1)
	comp, err := Composite(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	comp.SetUniformCapacity(10)
	demand := make([]float64, len(comp.Edges))
	for i := range demand {
		demand[i] = 5
	}
	if err := comp.AugmentBlockFeasibility(demand); err != nil {
		t.Fatal(err)
	}
	if comp.Origin != comp.BlockOrigins[0] {
		t.Fatalf("augmentation left Origin at %d", comp.Origin)
	}
	// Some arc in every block gained capacity (the block origin's paths).
	m := base.G.NumArcs()
	for b := 0; b < comp.Blocks; b++ {
		raised := false
		for id := b * m; id < (b+1)*m; id++ {
			if comp.G.Arc(id).Cap > 10 {
				raised = true
				break
			}
		}
		if !raised {
			t.Errorf("block %d has no augmented arc", b)
		}
	}
	if err := comp.AugmentBlockFeasibility(demand[:1]); err == nil {
		t.Error("AugmentBlockFeasibility accepted a short demand vector")
	}
}
