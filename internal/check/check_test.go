package check

import (
	"strings"
	"testing"

	"jcr/internal/graph"
	"jcr/internal/placement"
)

// lineSpec builds a 3-node line 0 -> 1 -> 2 with the origin pinned at node
// 0, one cache slot at node 1, and a demand of 2 for item 0 at node 2.
func lineSpec(linkCap float64) (*placement.Spec, []graph.ArcID) {
	g := graph.New(3)
	a01 := g.AddArc(0, 1, 1, linkCap)
	a12 := g.AddArc(1, 2, 1, linkCap)
	rates := [][]float64{{0, 0, 2}, {0, 0, 0}}
	s := &placement.Spec{
		G:        g,
		NumItems: 2,
		CacheCap: []float64{0, 1, 0},
		Pinned:   []graph.NodeID{0},
		Rates:    rates,
	}
	return s, []graph.ArcID{a01, a12}
}

func wantErr(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestPlacementAcceptsFeasible(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	pl.Stores[1][0] = true
	if err := Placement(s, pl); err != nil {
		t.Fatalf("feasible placement rejected: %v", err)
	}
}

func TestPlacementRejectsOverCapacity(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	pl.Stores[1][0] = true
	pl.Stores[1][1] = true // capacity is 1
	wantErr(t, Placement(s, pl), "Eq. 1f")
}

func TestPlacementRejectsMissingPin(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	pl.Stores[0][1] = false
	wantErr(t, Placement(s, pl), "pinned")
}

func TestPlacementRejectsWrongDims(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	pl.Stores = pl.Stores[:2]
	wantErr(t, Placement(s, pl), "covers")
}

func TestFlowAcceptsFeasible(t *testing.T) {
	s, arcs := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: arcs},
		Rate: 2,
	}}
	if err := Flow(s, pl, paths, false); err != nil {
		t.Fatalf("feasible routing rejected: %v", err)
	}
}

func TestFlowRejectsUnderService(t *testing.T) {
	s, arcs := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: arcs},
		Rate: 1, // demand is 2
	}}
	wantErr(t, Flow(s, pl, paths, false), "served at rate")
}

func TestFlowRejectsPathWithoutReplica(t *testing.T) {
	s, arcs := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: arcs[1:]}, // 1 -> 2, but node 1 caches nothing
		Rate: 2,
	}}
	wantErr(t, Flow(s, pl, paths, false), "no replica")
}

func TestFlowRejectsBrokenPath(t *testing.T) {
	s, arcs := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: []graph.ArcID{arcs[1], arcs[0]}}, // not contiguous
		Rate: 2,
	}}
	wantErr(t, Flow(s, pl, paths, false), "path")
}

func TestFlowRejectsCongestion(t *testing.T) {
	s, arcs := lineSpec(1) // demand 2 over links of capacity 1
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: arcs},
		Rate: 2,
	}}
	wantErr(t, Flow(s, pl, paths, false), "Eq. 1d")
	if err := Flow(s, pl, paths, true); err != nil {
		t.Fatalf("allowCongestion should accept the overloaded routing: %v", err)
	}
}

func TestSolutionRejectsWrongCost(t *testing.T) {
	s, arcs := lineSpec(graph.Unlimited)
	pl := s.NewPlacement()
	paths := []placement.ServingPath{{
		Req:  placement.Request{Item: 0, Node: 2},
		Path: graph.Path{Arcs: arcs},
		Rate: 2,
	}}
	// True cost: rate 2 over two unit-cost links = 4.
	if err := Solution(s, pl, paths, 4); err != nil {
		t.Fatalf("correct cost rejected: %v", err)
	}
	wantErr(t, Solution(s, pl, paths, 3), "reported cost")
}

func TestArcFlowAcceptsFeasible(t *testing.T) {
	s, _ := lineSpec(2)
	f := []float64{2, 2}
	if err := ArcFlow(s.G, f, 0, map[graph.NodeID]float64{2: 2}, false); err != nil {
		t.Fatalf("feasible flow rejected: %v", err)
	}
}

func TestArcFlowRejectsConservationViolation(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	f := []float64{2, 1} // node 1 absorbs a unit of flow
	wantErr(t, ArcFlow(s.G, f, 0, map[graph.NodeID]float64{2: 2}, false), "net outflow")
}

func TestArcFlowRejectsOverCapacity(t *testing.T) {
	s, _ := lineSpec(1)
	f := []float64{2, 2}
	wantErr(t, ArcFlow(s.G, f, 0, map[graph.NodeID]float64{2: 2}, false), "Eq. 1d")
	if err := ArcFlow(s.G, f, 0, map[graph.NodeID]float64{2: 2}, true); err != nil {
		t.Fatalf("allowCongestion should accept the overloaded flow: %v", err)
	}
}

func TestArcFlowRejectsNegative(t *testing.T) {
	s, _ := lineSpec(graph.Unlimited)
	f := []float64{2, -2}
	wantErr(t, ArcFlow(s.G, f, 0, map[graph.NodeID]float64{2: 2}, false), "invalid flow")
}
