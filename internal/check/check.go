// Package check provides runtime invariant validators for solver outputs:
// every placement and routing solution the algorithms emit can be verified
// against the feasibility constraints of the paper's Eq. (1) — cache
// capacities (1f), flow conservation and full service (1b-1c), link
// capacities (1d) — and against an independent recomputation of its
// reported cost. The solver test suites (core, placement, msufp, flow,
// exact) call these validators on every run, so a regression that produces
// an infeasible or mispriced solution fails loudly instead of skewing
// reproduced figures.
package check

import (
	"fmt"
	"math"
	"sort"

	"jcr/internal/flow"
	"jcr/internal/graph"
	"jcr/internal/placement"
)

// Validation tolerances, named in one place so they are auditable
// (enforced by jcrlint tol-literal).
const (
	// CapSlack absorbs floating-point residue when comparing cache
	// occupancy or link load against a capacity (Eqs. 1d and 1f).
	CapSlack = 1e-9
	// RateTol is the relative tolerance on a request's total served rate
	// versus its demand (Eq. 1b-1c full-service check).
	RateTol = 1e-6
	// CostTol is the relative tolerance when comparing a reported cost
	// against its independent recomputation.
	CostTol = 1e-6
	// FlowTol is the relative tolerance (scaled by total demand) for
	// per-node flow-conservation residues in arc-flow solutions.
	FlowTol = 1e-6
)

// Placement verifies that pl is a feasible caching decision for s: the
// stores matrix has the spec's dimensions, every pinned node stores the
// whole catalog, and every non-pinned node's occupancy respects its cache
// capacity (Eq. 1f).
func Placement(s *placement.Spec, pl *placement.Placement) error {
	n := s.G.NumNodes()
	if len(pl.Stores) != n {
		return fmt.Errorf("check: placement covers %d nodes, spec has %d", len(pl.Stores), n)
	}
	for v, row := range pl.Stores {
		if len(row) != s.NumItems {
			return fmt.Errorf("check: node %d stores %d item slots, catalog has %d", v, len(row), s.NumItems)
		}
	}
	for _, v := range s.Pinned {
		for i := 0; i < s.NumItems; i++ {
			if !pl.Stores[v][i] {
				return fmt.Errorf("check: pinned node %d does not store item %d", v, i)
			}
		}
	}
	for v := range pl.Stores {
		if s.IsPinned(v) {
			continue
		}
		if used := s.Occupancy(pl, v); used > s.CacheCap[v]+CapSlack {
			return fmt.Errorf("check: node %d occupancy %.9g exceeds capacity %.9g (Eq. 1f)", v, used, s.CacheCap[v])
		}
	}
	return nil
}

// Flow verifies that the serving paths are a feasible routing of s's
// demands under pl: every path is a contiguous cycle-free walk ending at
// its requester, originates the response at a node that stores the item,
// serves each request's full demand (Eq. 1b-1c), and — unless
// allowCongestion — keeps every link load within its capacity (Eq. 1d).
// Rates must be non-negative, and no path may serve a zero-demand request.
func Flow(s *placement.Spec, pl *placement.Placement, paths []placement.ServingPath, allowCongestion bool) error {
	return PartialFlow(s, pl, paths, nil, allowCongestion)
}

// PartialFlow is Flow for degraded operation: requests listed in unserved
// are exempt from the full-service check (Eq. 1b-1c) as long as their
// served rate plus declared unserved rate covers the demand. A nil or
// empty unserved map makes it identical to Flow. Used to validate
// best-effort routings on networks with failed links, where some demand is
// legitimately unservable and must be declared rather than silently
// dropped.
func PartialFlow(s *placement.Spec, pl *placement.Placement, paths []placement.ServingPath, unserved map[placement.Request]float64, allowCongestion bool) error {
	if err := Placement(s, pl); err != nil {
		return err
	}
	served := map[placement.Request]float64{}
	for k := range paths {
		sp := &paths[k]
		rq := sp.Req
		if rq.Item < 0 || rq.Item >= s.NumItems || rq.Node < 0 || rq.Node >= s.G.NumNodes() {
			return fmt.Errorf("check: serving path %d references request (%d,%d) out of range", k, rq.Item, rq.Node)
		}
		if sp.Rate < 0 || math.IsNaN(sp.Rate) {
			return fmt.Errorf("check: serving path %d has invalid rate %v", k, sp.Rate)
		}
		if len(sp.Path.Arcs) == 0 {
			// Local hit: the requester itself must store the item.
			if !pl.Stores[rq.Node][rq.Item] {
				return fmt.Errorf("check: empty path for request (%d,%d) but requester stores no replica", rq.Item, rq.Node)
			}
		} else {
			if err := sp.Path.Validate(s.G, sp.Path.Source(s.G), rq.Node); err != nil {
				return fmt.Errorf("check: serving path %d for request (%d,%d): %w", k, rq.Item, rq.Node, err)
			}
			stored := false
			for _, v := range sp.Path.Nodes(s.G) {
				if pl.Stores[v][rq.Item] {
					stored = true
					break
				}
			}
			if !stored {
				return fmt.Errorf("check: serving path %d for request (%d,%d) touches no replica", k, rq.Item, rq.Node)
			}
		}
		served[rq] += sp.Rate
	}
	// Full service: each positive-rate request is served at its demand
	// (Eq. 1b aggregated over the request's paths), with declared unserved
	// rate counted toward the demand under degraded operation.
	for _, rq := range s.Requests() {
		want := s.Rates[rq.Item][rq.Node]
		got := served[rq]
		if u, ok := unserved[rq]; ok {
			if u < 0 || math.IsNaN(u) {
				return fmt.Errorf("check: request (%d,%d) declares invalid unserved rate %v", rq.Item, rq.Node, u)
			}
			got += u
		}
		if math.Abs(got-want) > RateTol*(1+want) {
			return fmt.Errorf("check: request (%d,%d) served at rate %.9g, demand %.9g", rq.Item, rq.Node, got, want)
		}
		delete(served, rq)
	}
	// Iterate sorted so the reported witness (there may be several bad
	// entries) is the same on every run.
	for _, rq := range sortedRequests(unserved) {
		u := unserved[rq]
		if rq.Item < 0 || rq.Item >= s.NumItems || rq.Node < 0 || rq.Node >= s.G.NumNodes() {
			return fmt.Errorf("check: unserved entry references request (%d,%d) out of range", rq.Item, rq.Node)
		}
		if s.Rates[rq.Item][rq.Node] <= 0 && u > RateTol {
			return fmt.Errorf("check: request (%d,%d) declares unserved rate %.9g but has no demand", rq.Item, rq.Node, u)
		}
	}
	for _, rq := range sortedRequests(served) {
		if got := served[rq]; got > RateTol {
			return fmt.Errorf("check: request (%d,%d) served at rate %.9g but has no demand", rq.Item, rq.Node, got)
		}
	}
	if !allowCongestion {
		_, loads, _ := placement.EvaluateServing(s, paths, pl)
		for id, load := range loads {
			c := s.G.Arc(id).Cap
			if math.IsInf(c, 1) || c <= 0 {
				continue
			}
			if load > c*(1+CapSlack)+CapSlack {
				return fmt.Errorf("check: arc %d load %.9g exceeds capacity %.9g (Eq. 1d)", id, load, c)
			}
		}
	}
	return nil
}

// Solution verifies a complete solution: the placement is feasible, the
// serving paths are a feasible routing (congestion permitted, as in the
// paper's evaluation), and the reported cost matches an independent
// recomputation with placement.EvaluateServing semantics within CostTol.
func Solution(s *placement.Spec, pl *placement.Placement, paths []placement.ServingPath, reportedCost float64) error {
	if err := Flow(s, pl, paths, true); err != nil {
		return err
	}
	cost, _, _ := placement.EvaluateServing(s, paths, pl)
	if math.Abs(cost-reportedCost) > CostTol*(1+math.Abs(cost)) {
		return fmt.Errorf("check: reported cost %.9g, recomputed %.9g", reportedCost, cost)
	}
	return nil
}

// ArcFlow verifies a single-source splittable arc flow: every arc flow is
// non-negative and within the arc's capacity (unless allowCongestion), and
// flow is conserved at every node — net outflow equals the total demand at
// the source, minus the demand at each sink, and zero elsewhere (Eq.
// 1b-1d in flow form). Conservation residues are tolerated up to FlowTol
// scaled by the total demand.
func ArcFlow(g *graph.Graph, arcFlow []float64, src graph.NodeID, demand map[graph.NodeID]float64, allowCongestion bool) error {
	if len(arcFlow) != g.NumArcs() {
		return fmt.Errorf("check: arc flow has %d entries for %d arcs", len(arcFlow), g.NumArcs())
	}
	// Sum in sorted node order: float addition is order-sensitive in the
	// last ulp, and map iteration order would make the tolerance itself
	// nondeterministic.
	var total float64
	for _, v := range sortedNodes(demand) {
		total += demand[v]
	}
	tol := FlowTol * (1 + total)
	for id, f := range arcFlow {
		if f < -tol || math.IsNaN(f) {
			return fmt.Errorf("check: arc %d carries invalid flow %.9g", id, f)
		}
		c := g.Arc(id).Cap
		if allowCongestion || math.IsInf(c, 1) || c <= 0 {
			continue
		}
		if f > c*(1+CapSlack)+tol {
			return fmt.Errorf("check: arc %d flow %.9g exceeds capacity %.9g (Eq. 1d)", id, f, c)
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		want := -demand[v]
		if v == src {
			want += total
		}
		if net := flow.NetOutflow(g, arcFlow, v); math.Abs(net-want) > tol {
			return fmt.Errorf("check: node %d net outflow %.9g, want %.9g (Eq. 1b-1c)", v, net, want)
		}
	}
	return nil
}

// sortedRequests fixes a deterministic iteration order over a per-request
// map (by item, then node).
func sortedRequests(m map[placement.Request]float64) []placement.Request {
	out := make([]placement.Request, 0, len(m))
	for rq := range m {
		out = append(out, rq)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Item != out[j].Item {
			return out[i].Item < out[j].Item
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// sortedNodes fixes a deterministic iteration order over a per-node map.
func sortedNodes(m map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
