package jcr_test

import (
	"fmt"

	"jcr"
)

// Example builds a four-node cache network and runs Algorithm 1 under
// unlimited link capacities.
func Example() {
	g := jcr.NewGraph(4)
	g.AddEdge(0, 1, 50, jcr.Unlimited) // origin uplink
	g.AddEdge(1, 2, 2, jcr.Unlimited)
	g.AddEdge(1, 3, 3, jcr.Unlimited)

	spec := &jcr.Spec{
		G:        g,
		NumItems: 2,
		CacheCap: []float64{0, 0, 1, 1},
		Pinned:   []int{0},
		Rates: [][]float64{
			{0, 0, 8, 1},
			{0, 0, 1, 6},
		},
	}
	res, err := jcr.Alg1(spec, jcr.AllPairs(g))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("node 2 caches item 0: %v\n", res.Placement.Has(2, 0))
	fmt.Printf("node 3 caches item 1: %v\n", res.Placement.Has(3, 1))
	fmt.Printf("routing cost: %.0f\n", res.Cost)
	// Output:
	// node 2 caches item 0: true
	// node 3 caches item 1: true
	// routing cost: 10
}

// ExampleAlternating solves the general capacitated case and validates the
// solution.
func ExampleAlternating() {
	g := jcr.NewGraph(3)
	g.AddEdge(0, 1, 10, 100)
	g.AddEdge(1, 2, 1, 100)
	spec := &jcr.Spec{
		G:        g,
		NumItems: 2,
		CacheCap: []float64{0, 0, 1},
		Pinned:   []int{0},
		Rates:    [][]float64{{0, 0, 5}, {0, 0, 2}},
	}
	sol, err := jcr.Alternating(spec, jcr.AlternatingOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := jcr.ValidateSolution(spec, sol); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	// The hot item is cached at the requester; the cold one ships from
	// the origin at cost 2 * 11.
	fmt.Printf("cost: %.0f, congestion: %.2f\n", sol.Cost, sol.MaxUtilization)
	// Output:
	// cost: 22, congestion: 0.02
}

// ExampleSolveMSUFP routes unsplittable demands from a replica server
// within link capacities (Algorithm 2).
func ExampleSolveMSUFP() {
	g := jcr.NewGraph(3)
	g.AddArc(0, 1, 1, 4) // cheap, narrow
	g.AddArc(0, 2, 3, 10)
	g.AddArc(2, 1, 1, 10) // detour
	inst := &jcr.MSUFPInstance{
		G:      g,
		Source: 0,
		Commodities: []jcr.MSUFPCommodity{
			{Dest: 1, Demand: 3},
			{Dest: 1, Demand: 3},
		},
	}
	asgn, err := jcr.SolveMSUFP(inst, 8)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	m := inst.Evaluate(asgn)
	// Theorem 4.7(i): the unsplittable cost never exceeds the splittable
	// optimum (which splits 4 units cheap + 2 via the detour: 4+8 = 12);
	// the small capacity overshoot stays within the 4.7(ii) bound.
	split, _ := inst.SplittableOptimum()
	fmt.Printf("cost within splittable optimum: %v\n", m.Cost <= split.Cost)
	fmt.Printf("cost: %.0f\n", m.Cost)
	// Output:
	// cost within splittable optimum: true
	// cost: 6
}

// ExampleSolveFCFR computes the fully fractional lower bound.
func ExampleSolveFCFR() {
	g := jcr.NewGraph(2)
	g.AddEdge(0, 1, 10, 100)
	spec := &jcr.Spec{
		G:        g,
		NumItems: 2,
		CacheCap: []float64{0, 1},
		Pinned:   []int{0},
		Rates:    [][]float64{{0, 1}, {0, 1}},
	}
	res, err := jcr.SolveFCFR(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("FC-FR optimum: %.0f\n", res.Cost)
	// Output:
	// FC-FR optimum: 10
}
